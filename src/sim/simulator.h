// Discrete-event simulation core: virtual clock, timer wheel and coroutine
// scheduling. All substrates (network, disks, hypervisor, workloads) run as
// coroutines driven by one Simulator instance, giving fully deterministic
// experiments.
//
// The event core is allocation-free in steady state: entries live in a
// slab pool recycled through a free list, the pending set is an index-based
// 4-ary heap whose items carry their (time, seq) sort keys inline (sifting
// never touches the pool), and Timer handles validate against per-slot
// generation counters instead of owning weak_ptrs.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/task.h"

namespace hm::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in seconds.
  double now() const noexcept { return now_; }

  /// Handle to a scheduled callback; cancellation is race-free because the
  /// simulation is single-threaded. A Timer is validated by a generation
  /// counter, so handles outliving their entry (fired or cancelled) are
  /// safely inert. Handles must not outlive the Simulator itself.
  class Timer {
   public:
    Timer() = default;
    void cancel() noexcept {
      if (sim_) sim_->cancel_entry(slot_, gen_);
    }
    bool active() const noexcept { return sim_ && sim_->entry_active(slot_, gen_); }

   private:
    friend class Simulator;
    Timer(Simulator* sim, std::uint32_t slot, std::uint64_t gen) noexcept
        : sim_(sim), slot_(slot), gen_(gen) {}
    Simulator* sim_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t gen_ = 0;
  };

  /// Schedule `fn` to run `delay` seconds from now (delay clamped to >= 0).
  Timer schedule(double delay, std::function<void()> fn) {
    double t = now_ + delay;
    if (!(t > now_)) t = now_;  // clamps negative delays and NaN to "now"
    return schedule_at(t, std::move(fn));
  }

  /// Schedule `fn` at absolute virtual time `t` (clamped to >= now). Used
  /// where the caller already holds an absolute deadline (e.g. the flow
  /// network's completion heap) and re-deriving a delay would round twice.
  Timer schedule_at(double t, std::function<void()> fn);

  /// Detach a coroutine as a background process; it starts at the current
  /// virtual time, once the currently running event returns to the loop.
  void spawn(Task t);

  /// Awaitable that suspends the current coroutine for `dt` seconds.
  struct DelayAwaiter {
    Simulator& sim;
    double dt;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim.schedule(dt, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(double dt) noexcept { return DelayAwaiter{*this, dt}; }
  /// Reschedule the current coroutine at the same virtual time (cooperative
  /// yield behind already-queued events).
  DelayAwaiter yield() noexcept { return DelayAwaiter{*this, 0.0}; }

  /// Resume `h` at the current virtual time via the event queue. Using the
  /// queue (instead of resuming inline) bounds stack depth and preserves
  /// FIFO ordering between wakeups.
  void resume_later(std::coroutine_handle<> h) {
    schedule(0.0, [h] { h.resume(); });
  }

  /// Execute the next pending event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run all events with timestamp <= t, then advance the clock to t.
  void run_until(double t);

  /// Run until `pred()` becomes true (checked after each event) or the queue
  /// drains. Returns the predicate value.
  bool run_while_pending(const std::function<bool()>& done_pred);

  std::size_t pending_events() const noexcept {
    return heap_.size() + (tail_.size() - tail_head_);
  }
  std::uint64_t events_processed() const noexcept { return processed_; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// Pooled entry; the sort keys live in HeapItem, not here.
  struct Slot {
    std::function<void()> fn;
    std::uint64_t gen = 0;  // bumped on release; Timer handles compare it
    std::uint32_t next_free = kNilSlot;
    bool cancelled = false;
  };
  /// Heap element with inline keys: sift operations stay within one
  /// contiguous array, never dereferencing the pool. The 16-byte layout
  /// packs (seq, slot) into one word so four children span one cache line;
  /// comparing `key` directly yields FIFO order within a timestamp.
  static constexpr unsigned kSlotBits = 24;  // <= 16M concurrently pending
  struct HeapItem {
    double t;
    std::uint64_t key;  // (seq << kSlotBits) | slot
    std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(key & ((1u << kSlotBits) - 1));
    }
  };
  static bool before(const HeapItem& a, const HeapItem& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.key < b.key;
  }

  // Two-lane pending set. DES schedules are overwhelmingly monotone (each
  // event schedules successors at now + delay, and now only moves forward),
  // so a push that is not earlier than the newest tail entry appends to a
  // sorted-run FIFO in O(1); only out-of-order pushes pay the heap's
  // O(log n). Pops take the smaller of the two lane heads.
  void push_item(HeapItem item) {
    if (tail_head_ == tail_.size()) {
      tail_.clear();
      tail_head_ = 0;
    }
    if (tail_.empty() || !before(item, tail_.back())) {
      tail_.push_back(item);
      return;
    }
    heap_push(item);
  }
  const HeapItem* peek_item() const noexcept {
    const bool have_tail = tail_head_ < tail_.size();
    if (heap_.empty()) return have_tail ? &tail_[tail_head_] : nullptr;
    if (!have_tail || before(heap_.front(), tail_[tail_head_])) return &heap_.front();
    return &tail_[tail_head_];
  }
  HeapItem pop_item();

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t slot) noexcept {
    Slot& s = pool_[slot];
    s.fn = nullptr;  // drop captured state promptly
    s.cancelled = false;
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = slot;
  }
  void cancel_entry(std::uint32_t slot, std::uint64_t gen) noexcept {
    if (slot < pool_.size() && pool_[slot].gen == gen) pool_[slot].cancelled = true;
  }
  bool entry_active(std::uint32_t slot, std::uint64_t gen) const noexcept {
    return slot < pool_.size() && pool_[slot].gen == gen && !pool_[slot].cancelled;
  }

  void heap_push(HeapItem item);
  HeapItem heap_pop();

  bool pop_and_run();

  std::vector<HeapItem> heap_;  // out-of-order lane: implicit 4-ary min-heap
  std::vector<HeapItem> tail_;  // monotone lane: sorted run consumed from tail_head_
  std::size_t tail_head_ = 0;
  std::vector<Slot> pool_;
  std::uint32_t free_head_ = kNilSlot;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace hm::sim
