// Discrete-event simulation core: virtual clock, timer wheel and coroutine
// scheduling. All substrates (network, disks, hypervisor, workloads) run as
// coroutines driven by one Simulator instance, giving fully deterministic
// experiments.
//
// The event core is allocation-free in steady state and the pending set is
// THREE lanes, popped by the globally smallest (time, seq) key so the event
// order is a pure function of the schedule calls, never of the lane:
//  * fast lane  — an O(1) FIFO ring of seq-stamped raw continuations
//    (function pointer + two opaque words) for zero-delay work: coroutine
//    wakeups, yields, flow-completion steps, FIFO-station handoffs. No slot
//    allocation, no callable construction, no heap.
//  * tail lane  — a monotone sorted-run FIFO for the dominant
//    in-timestamp-order timer schedules (O(1) push).
//  * heap lane  — an index-based 4-ary min-heap with inline (t, seq) keys
//    for out-of-order timer pushes.
// Timer entries live in a slab pool recycled through a free list and hold a
// SmallFn (two-word inline callable, compile-time capture check — see
// small_fn.h) instead of a std::function, so no scheduled event ever
// heap-allocates. Timer handles validate against per-slot generation
// counters (slab lanes) or against the fast lane's monotone pop count, so
// handles outliving their entry are safely inert.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/small_fn.h"
#include "sim/task.h"

namespace hm::sim {

class Simulator {
 public:
  Simulator() = default;
  ~Simulator() { destroy_detached(); }

  /// Destroy every detached task still suspended (background daemons, or a
  /// max_sim_time truncation leaving coroutines parked on awaitables):
  /// frame-local destructors run, so frame-owned resources are reclaimed
  /// instead of leaking with the frame slab. The destructor calls this as a
  /// backstop, but a harness whose frames reference objects that die before
  /// the simulator (declaration order) must call it explicitly first, while
  /// those objects are alive. Must not be called while the run loop is
  /// executing.
  void destroy_detached() noexcept;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in seconds.
  double now() const noexcept { return now_; }

  /// Handle to a scheduled callback; cancellation is race-free because the
  /// simulation is single-threaded. A Timer is validated by a generation
  /// counter (slab entries) or the fast lane's monotone pop count, so
  /// handles outliving their entry (fired or cancelled) are safely inert.
  /// Handles must not outlive the Simulator itself.
  class Timer {
   public:
    Timer() = default;
    void cancel() noexcept {
      if (sim_) sim_->cancel_entry(slot_, gen_);
    }
    bool active() const noexcept { return sim_ && sim_->entry_active(slot_, gen_); }

   private:
    friend class Simulator;
    Timer(Simulator* sim, std::uint32_t slot, std::uint64_t gen) noexcept
        : sim_(sim), slot_(slot), gen_(gen) {}
    Simulator* sim_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t gen_ = 0;
  };

  /// Schedule `fn` to run `delay` seconds from now (delay clamped to >= 0;
  /// NaN counts as zero). One clamp only — schedule_at owns it.
  Timer schedule(double delay, SmallFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute virtual time `t` (clamped to >= now). Used
  /// where the caller already holds an absolute deadline (e.g. the flow
  /// network's completion heap) and re-deriving a delay would round twice.
  Timer schedule_at(double t, SmallFn fn);

  // --- fast lane ------------------------------------------------------------
  // Zero-delay continuations: `fn(a, b)` runs at the CURRENT virtual time,
  // in global (t, seq) order with everything else — i.e. after every event
  // already queued at this instant. O(1) push into a FIFO ring; no slot, no
  // callable object, no heap. This is the dominant event class (sync-
  // primitive wakeups, flow-completion steps, station handoffs, yields).

  using FastFn = void (*)(void* a, void* b);

  void post(FastFn fn, void* a, void* b = nullptr) {
    assert(fn != nullptr);  // a null fn marks a cancelled ring entry
    if (fast_count_ == fast_.size()) grow_fast();
    fast_[(fast_head_ + fast_count_) & (fast_.size() - 1)] =
        FastItem{fn, a, b, seq_++};
    ++fast_count_;
  }
  /// Resume a coroutine through the fast lane (the bounded-stack, FIFO
  /// replacement for resuming inline).
  void post(std::coroutine_handle<> h) { post(&resume_thunk, h.address()); }
  /// The canonical coroutine-resume FastFn (`a` is the handle address).
  /// Shared with continuation records built outside the Simulator (e.g.
  /// sync.h's WaitNode::bind), so every coroutine wakeup resumes the same
  /// way.
  static void resume_thunk(void* a, void*) {
    std::coroutine_handle<>::from_address(a).resume();
  }
  /// Fast-lane push that hands back a cancellable Timer. Slightly dearer
  /// than post() (index bookkeeping), so reserved for producers that may
  /// need to retract the event (e.g. the flow network's settle epoch).
  Timer post_cancellable(FastFn fn, void* a, void* b = nullptr) {
    const std::uint64_t idx = fast_popped_ + fast_count_;
    post(fn, a, b);
    return Timer{this, kFastSlot, idx};
  }

  /// Detach a coroutine as a background process; it starts at the current
  /// virtual time, once the currently running event returns to the loop.
  void spawn(Task t);

  /// Awaitable that suspends the current coroutine for `dt` seconds. A
  /// non-positive (or NaN) delay is a cooperative yield: the handle goes
  /// straight onto the fast lane — no clamp arithmetic, no callable, no
  /// timer slot.
  struct DelayAwaiter {
    Simulator& sim;
    double dt;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      if (!(dt > 0.0)) {
        sim.post(h);
        return;
      }
      sim.schedule(dt, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(double dt) noexcept { return DelayAwaiter{*this, dt}; }
  /// Reschedule the current coroutine at the same virtual time (cooperative
  /// yield behind already-queued events).
  DelayAwaiter yield() noexcept { return DelayAwaiter{*this, 0.0}; }

  /// Resume `h` at the current virtual time via the event queue. Using the
  /// queue (instead of resuming inline) bounds stack depth and preserves
  /// FIFO ordering between wakeups.
  void resume_later(std::coroutine_handle<> h) { post(h); }

  /// Execute the next pending event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run all events with timestamp <= t, then advance the clock to t.
  void run_until(double t);

  /// Run until `pred()` becomes true (checked after each event) or the queue
  /// drains. Returns the predicate value.
  bool run_while_pending(const std::function<bool()>& done_pred);

  /// Timestamp of the next event that will actually run, without running it:
  /// now() when a live fast-lane entry is pending, the head timer's time
  /// otherwise, +infinity on an empty queue. Cancelled entries are purged
  /// while peeking so they cannot inflate the answer. Used by the
  /// epoch-coupled shard driver to agree on the global next settle instant.
  double next_event_time() noexcept;

  std::size_t pending_events() const noexcept {
    return heap_.size() + (tail_.size() - tail_head_) + fast_count_;
  }
  std::uint64_t events_processed() const noexcept { return processed_; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  /// Sentinel slot id marking a Timer that refers to a fast-lane entry (its
  /// gen field then carries the entry's global fast-lane index). Distinct
  /// from any slab slot: the slab is capped at 2^24 entries.
  static constexpr std::uint32_t kFastSlot = 0xfffffffeu;

  /// Pooled timer entry; the sort keys live in HeapItem, not here.
  struct Slot {
    SmallFn fn;
    std::uint64_t gen = 0;  // bumped on release; Timer handles compare it
    std::uint32_t next_free = kNilSlot;
    bool cancelled = false;
  };
  /// Heap element with inline keys: sift operations stay within one
  /// contiguous array, never dereferencing the pool. The 16-byte layout
  /// packs (seq, slot) into one word so four children span one cache line;
  /// comparing `key` directly yields FIFO order within a timestamp.
  static constexpr unsigned kSlotBits = 24;  // <= 16M concurrently pending
  struct HeapItem {
    double t;
    std::uint64_t key;  // (seq << kSlotBits) | slot
    std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(key & ((1u << kSlotBits) - 1));
    }
  };
  static bool before(const HeapItem& a, const HeapItem& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.key < b.key;
  }

  /// Fast-lane ring entry. Its timestamp is implicit: entries are pushed at
  /// the then-current virtual time, and because pops always take the global
  /// (t, seq) minimum, the ring drains before the clock can advance — so a
  /// pending fast entry's time is always exactly now(). fn == nullptr marks
  /// a cancelled entry (skipped on pop without counting as processed).
  struct FastItem {
    FastFn fn;
    void* a;
    void* b;
    std::uint64_t seq;
  };

  // Two timer lanes. DES schedules are overwhelmingly monotone (each event
  // schedules successors at now + delay, and now only moves forward), so a
  // push that is not earlier than the newest tail entry appends to a sorted
  // run in O(1); only out-of-order pushes pay the heap's O(log n).
  void push_item(HeapItem item) {
    if (tail_head_ == tail_.size()) {
      tail_.clear();
      tail_head_ = 0;
    }
    if (tail_.empty() || !before(item, tail_.back())) {
      tail_.push_back(item);
      return;
    }
    heap_push(item);
  }
  /// Head of the two timer lanes only (the fast lane is compared against
  /// this by the pop loop, which knows the ring's implicit timestamp).
  const HeapItem* peek_item() const noexcept {
    const bool have_tail = tail_head_ < tail_.size();
    if (heap_.empty()) return have_tail ? &tail_[tail_head_] : nullptr;
    if (!have_tail || before(heap_.front(), tail_[tail_head_])) return &heap_.front();
    return &tail_[tail_head_];
  }
  HeapItem pop_item();

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t slot) noexcept {
    Slot& s = pool_[slot];
    s.fn = nullptr;  // drop captured state promptly
    s.cancelled = false;
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = slot;
  }
  void cancel_entry(std::uint32_t slot, std::uint64_t gen) noexcept {
    if (slot == kFastSlot) {
      FastItem* it = fast_entry(gen);
      if (it != nullptr) it->fn = nullptr;
      return;
    }
    if (slot < pool_.size() && pool_[slot].gen == gen) pool_[slot].cancelled = true;
  }
  bool entry_active(std::uint32_t slot, std::uint64_t gen) const noexcept {
    if (slot == kFastSlot) {
      const FastItem* it = const_cast<Simulator*>(this)->fast_entry(gen);
      return it != nullptr && it->fn != nullptr;
    }
    return slot < pool_.size() && pool_[slot].gen == gen && !pool_[slot].cancelled;
  }

  /// Ring entry for global fast-lane index `idx`, or null once popped.
  /// Indices never recycle (they count pushes since construction), so stale
  /// handles cannot alias a later entry.
  FastItem* fast_entry(std::uint64_t idx) noexcept {
    if (idx < fast_popped_ || idx >= fast_popped_ + fast_count_) return nullptr;
    return &fast_[(fast_head_ + (idx - fast_popped_)) & (fast_.size() - 1)];
  }
  FastItem fast_pop() noexcept {
    const FastItem item = fast_[fast_head_];
    fast_head_ = (fast_head_ + 1) & (fast_.size() - 1);
    --fast_count_;
    ++fast_popped_;
    return item;
  }
  void grow_fast();

  void heap_push(HeapItem item);
  HeapItem heap_pop();

  bool pop_and_run();

  std::vector<HeapItem> heap_;  // out-of-order lane: implicit 4-ary min-heap
  std::vector<HeapItem> tail_;  // monotone lane: sorted run consumed from tail_head_
  std::size_t tail_head_ = 0;
  std::vector<FastItem> fast_;  // fast lane: power-of-two ring buffer
  std::size_t fast_head_ = 0;
  std::size_t fast_count_ = 0;
  std::uint64_t fast_popped_ = 0;  // entries ever popped (handle validation)
  std::vector<Slot> pool_;
  std::uint32_t free_head_ = kNilSlot;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  Task::promise_type* detached_head_ = nullptr;  // live detached tasks
};

}  // namespace hm::sim
