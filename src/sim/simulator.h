// Discrete-event simulation core: virtual clock, timer wheel and coroutine
// scheduling. All substrates (network, disks, hypervisor, workloads) run as
// coroutines driven by one Simulator instance, giving fully deterministic
// experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/task.h"

namespace hm::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in seconds.
  double now() const noexcept { return now_; }

  /// Handle to a scheduled callback; cancellation is race-free because the
  /// simulation is single-threaded.
  class Timer {
   public:
    Timer() = default;
    void cancel() noexcept {
      if (auto e = entry_.lock()) e->cancelled = true;
    }
    bool active() const noexcept {
      auto e = entry_.lock();
      return e && !e->cancelled && !e->fired;
    }

   private:
    friend class Simulator;
    struct Entry {
      double t = 0;
      std::uint64_t seq = 0;
      std::function<void()> fn;
      bool cancelled = false;
      bool fired = false;
    };
    explicit Timer(std::weak_ptr<Entry> e) : entry_(std::move(e)) {}
    std::weak_ptr<Entry> entry_;
  };

  /// Schedule `fn` to run `delay` seconds from now (delay clamped to >= 0).
  Timer schedule(double delay, std::function<void()> fn);

  /// Detach a coroutine as a background process; it starts at the current
  /// virtual time, once the currently running event returns to the loop.
  void spawn(Task t);

  /// Awaitable that suspends the current coroutine for `dt` seconds.
  struct DelayAwaiter {
    Simulator& sim;
    double dt;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim.schedule(dt, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(double dt) noexcept { return DelayAwaiter{*this, dt}; }
  /// Reschedule the current coroutine at the same virtual time (cooperative
  /// yield behind already-queued events).
  DelayAwaiter yield() noexcept { return DelayAwaiter{*this, 0.0}; }

  /// Resume `h` at the current virtual time via the event queue. Using the
  /// queue (instead of resuming inline) bounds stack depth and preserves
  /// FIFO ordering between wakeups.
  void resume_later(std::coroutine_handle<> h) {
    schedule(0.0, [h] { h.resume(); });
  }

  /// Execute the next pending event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run all events with timestamp <= t, then advance the clock to t.
  void run_until(double t);

  /// Run until `pred()` becomes true (checked after each event) or the queue
  /// drains. Returns the predicate value.
  bool run_while_pending(const std::function<bool()>& done_pred);

  std::size_t pending_events() const noexcept { return live_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

 private:
  using EntryPtr = std::shared_ptr<Timer::Entry>;
  struct Later {
    bool operator()(const EntryPtr& a, const EntryPtr& b) const noexcept {
      if (a->t != b->t) return a->t > b->t;
      return a->seq > b->seq;
    }
  };

  bool pop_and_run();

  std::priority_queue<EntryPtr, std::vector<EntryPtr>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;  // queued entries not yet cancelled
};

}  // namespace hm::sim
