// Thread-local, size-bucketed free-list pool for coroutine frames.
//
// Every sim::Task coroutine frame is allocated through this pool (see
// Task::promise_type::operator new), so in steady state the per-chunk data
// path of the migrators never touches the system allocator: a completed
// frame's memory goes onto a bucket free list and the next coroutine of a
// similar size reuses it. This is the same recycling discipline as the
// Simulator's event slab, extended to coroutine frames.
//
// Thread safety: the pool is thread_local. That is safe under the project's
// concurrency model — run_sweep() gives each worker thread its own
// Simulator, and a simulation (including every coroutine it creates and
// destroys) runs entirely on one thread, so frames are always returned to
// the pool they came from.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace hm::sim {

class FramePool {
 public:
  /// Monotonic counters (never reset); callers snapshot and diff.
  struct Stats {
    std::uint64_t served = 0;  // frames handed out (pooled sizes)
    std::uint64_t reused = 0;  // of those, satisfied from a free list
    std::uint64_t heap = 0;    // system allocations (slab growth + oversize)
  };

  static FramePool& local() noexcept {
    thread_local FramePool pool;
    return pool;
  }

  void* allocate(std::size_t n) {
    if (n == 0) n = 1;
    if (n > kMaxPooledBytes) {
      ++stats_.heap;
      return ::operator new(n);
    }
    ++stats_.served;
    const std::size_t b = bucket_of(n);
    if (FreeNode* node = free_[b]) {
      free_[b] = node->next;
      ++stats_.reused;
      return node;
    }
    return carve(b);
  }

  void deallocate(void* p, std::size_t n) noexcept {
    if (n == 0) n = 1;
    if (n > kMaxPooledBytes) {
      ::operator delete(p);
      return;
    }
    FreeNode* node = static_cast<FreeNode*>(p);
    const std::size_t b = bucket_of(n);
    node->next = free_[b];
    free_[b] = node;
  }

  const Stats& stats() const noexcept { return stats_; }

  /// Bytes of slab memory currently owned (tests assert growth behaviour).
  std::size_t slab_bytes() const noexcept { return slabs_.size() * kSlabBytes; }

  FramePool() = default;
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;
  ~FramePool() {
    for (void* s : slabs_) ::operator delete(s);
  }

  static constexpr std::size_t kGranularity = 64;  // bucket width, bytes
  static constexpr std::size_t kMaxPooledBytes = 4096;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

 private:
  static constexpr std::size_t kBuckets = kMaxPooledBytes / kGranularity;

  struct FreeNode {
    FreeNode* next;
  };

  static std::size_t bucket_of(std::size_t n) noexcept {
    return (n + kGranularity - 1) / kGranularity - 1;
  }

  /// Bucket empty: grab a fresh slab, carve it into frames of this bucket's
  /// size, return one and free-list the rest. Growth is unbounded by design
  /// (exhaustion adds a slab); memory is returned only at thread exit.
  void* carve(std::size_t b) {
    const std::size_t frame = (b + 1) * kGranularity;
    void* slab = ::operator new(kSlabBytes);
    ++stats_.heap;
    slabs_.push_back(slab);
    char* base = static_cast<char*>(slab);
    const std::size_t count = kSlabBytes / frame;
    for (std::size_t i = 1; i < count; ++i) {
      FreeNode* node = reinterpret_cast<FreeNode*>(base + i * frame);
      node->next = free_[b];
      free_[b] = node;
    }
    return base;
  }

  FreeNode* free_[kBuckets] = {};
  std::vector<void*> slabs_;
  Stats stats_;
};

}  // namespace hm::sim
