// Parallel-in-process sharded simulation.
//
// A ShardedSimulator runs N shard bodies — each typically owning a private
// sim::Simulator plus the component slice it simulates — across worker
// threads drawn from the process-wide WorkerBudget. Two execution modes:
//
//  * run(body): independent slices. Workers claim shard indices from a
//    shared counter; any number of threads (including just the caller)
//    produces the same per-shard results, because slices never communicate.
//    This is the mode the experiment harness uses once the deterministic
//    partitioner has proven the slices share no finite network constraint.
//
//  * run_epochs(body): epoch-coupled slices. One dedicated thread per shard
//    (spawned regardless of budget grants — correctness over fairness, the
//    shard count itself is the user's cap), so bodies may rendezvous on the
//    shared EpochBarrier and exchange ShardMessages at settle-epoch
//    boundaries. This is the conservative-window PDES harness: a shard may
//    only advance past an epoch boundary once every peer has contributed
//    its cross-shard rate updates for that epoch.
//
// Determinism contract — why (t, shard, seq) ordering preserves
// byte-identity: within one shard, event order is already a pure function
// of the schedule calls (see sim/simulator.h). Cross-shard messages are the
// only way shards can influence each other, and every message carries its
// virtual timestamp `t`, its origin shard id, and an origin-local sequence
// number. At each exchange the barrier merges all outboxes and delivers
// them sorted by (t, shard, seq) — exactly the order a single-shard run
// would have interleaved the same notifications (time first, then the
// deterministic tie-break a global seq counter would have produced, since
// same-instant messages from one shard keep their emission order and
// messages from different shards are ordered by shard id, which the
// partitioner assigned deterministically). No wall-clock race can reorder
// them, so the merged timeline is independent of thread scheduling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace hm::sim {

/// Cross-shard notification, globally ordered by (t, shard, seq).
struct ShardMessage {
  double t = 0.0;           // virtual timestamp of the originating event
  std::uint32_t shard = 0;  // origin shard
  std::uint64_t seq = 0;    // origin-local emission sequence
  std::uint64_t payload = 0;
  double value = 0.0;       // payload scalar (e.g. a shared-constraint demand delta)

  friend bool operator<(const ShardMessage& a, const ShardMessage& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.seq < b.seq;
  }
  friend bool operator==(const ShardMessage& a, const ShardMessage& b) noexcept {
    return a.t == b.t && a.shard == b.shard && a.seq == b.seq &&
           a.payload == b.payload && a.value == b.value;
  }
};

/// Conservative settle-epoch rendezvous for N parties. The last party to
/// arrive runs the reduce step (the hook where an escalated global solve or
/// a mailbox merge lives) while every peer is parked, then releases them —
/// so the reduce observes a quiescent epoch and its effects are visible to
/// all shards before any of them resumes.
class EpochBarrier {
 public:
  explicit EpochBarrier(std::uint32_t parties) : parties_(parties) {}
  EpochBarrier(const EpochBarrier&) = delete;
  EpochBarrier& operator=(const EpochBarrier&) = delete;

  /// Runs once per epoch, by the last arriver, before peers are released.
  void set_reduce(std::function<void(std::uint64_t epoch)> fn) { reduce_ = std::move(fn); }

  /// Block until all parties arrive; returns the index of the epoch just
  /// completed (0-based, monotonically increasing).
  std::uint64_t arrive_and_wait();

  std::uint32_t parties() const noexcept { return parties_; }
  std::uint64_t epochs_completed() const noexcept;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  const std::uint32_t parties_;
  std::uint32_t waiting_ = 0;
  std::uint64_t epoch_ = 0;
  std::function<void(std::uint64_t)> reduce_;
};

class ShardedSimulator {
 public:
  struct Stats {
    std::uint32_t shards = 0;
    std::uint32_t threads = 0;       // workers used, caller included
    std::uint64_t epochs = 0;        // barrier epochs completed (run_epochs)
    std::uint64_t messages = 0;      // cross-shard messages exchanged
  };

  explicit ShardedSimulator(std::uint32_t shards);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  std::uint32_t shard_count() const noexcept { return shards_; }

  /// Post a cross-shard message from shard `from` to shard `to`. Visible to
  /// `to` after the next exchange(). Safe to call concurrently from
  /// different shards; a single shard posts from its own thread only.
  void post(std::uint32_t from, std::uint32_t to, double t, std::uint64_t payload,
            double value = 0.0);

  /// Rendezvous with every shard, then read this shard's merged inbox for
  /// the epoch: all messages addressed to `shard`, sorted by
  /// (t, shard, seq). The returned reference is valid until this shard's
  /// next exchange(). Callable only from bodies running under run_epochs().
  const std::vector<ShardMessage>& exchange(std::uint32_t shard);

  /// Independent-slice mode: run body(0..shards-1), workers claim indices.
  /// Uses the caller plus up to (shards-1) budget-granted threads.
  Stats run(const std::function<void(std::uint32_t shard)>& body);

  /// Epoch-coupled mode: one dedicated thread per shard (budget-advisory),
  /// so bodies may call exchange()/post() and block on the barrier.
  Stats run_epochs(const std::function<void(std::uint32_t shard)>& body);

  EpochBarrier& barrier() noexcept { return barrier_; }

  /// Install a reduce step that runs AFTER the built-in mailbox merge, still
  /// inside the barrier with every shard parked. (Calling
  /// barrier().set_reduce directly would replace the mailbox routing; this
  /// composes with it.)
  void set_reduce_hook(std::function<void(std::uint64_t epoch)> fn);

  /// Run the mailbox merge outside any barrier. For single-threaded drivers
  /// that execute the epoch protocol inline instead of via run_epochs().
  void merge_now() { merge_epoch(); }

  /// Merged inbox for `shard` as of the last merge (barrier reduce or
  /// merge_now). Sorted by (t, shard, seq).
  const std::vector<ShardMessage>& inbox(std::uint32_t shard) const {
    return boxes_[shard].inbox;
  }

  std::uint64_t messages_exchanged() const noexcept { return messages_total_; }

 private:
  void merge_epoch();

  const std::uint32_t shards_;
  EpochBarrier barrier_;

  // Outboxes are written only by their origin shard between barriers and
  // read only inside the barrier's reduce step, so the barrier's mutex is
  // the sole synchronizer — no per-message locking.
  struct Mailbox {
    std::vector<ShardMessage> out;   // messages posted this epoch
    std::vector<std::uint32_t> dest;  // destination shard, parallel to `out`
    std::uint64_t next_seq = 0;
    std::vector<ShardMessage> inbox;  // merged result for this shard
  };
  std::vector<Mailbox> boxes_;
  std::uint64_t messages_total_ = 0;
};

}  // namespace hm::sim
