// Ablation: prioritized prefetch (Algorithm 3) vs FIFO and random pull
// orders. The paper's hypothesis: pulling the hottest chunks first means the
// data the workload touches next is usually already local, reducing
// on-demand stalls after control transfer.
#include <iostream>

#include "bench_common.h"

using namespace hm;
using namespace hm::bench;

int main() {
  struct Item {
    core::PullOrder order;
    const char* label;
  };
  const Item orders[] = {{core::PullOrder::kByWriteCount, "by-write-count (paper)"},
                         {core::PullOrder::kFifo, "fifo"},
                         {core::PullOrder::kRandom, "random"}};

  std::vector<cloud::SweepItem> items;
  for (const Item& it : orders) {
    cloud::ExperimentConfig cfg = ior_config(core::Approach::kHybrid);
    cfg.approach_cfg.hybrid.pull_order = it.order;
    items.push_back({it.label, cfg});
    // And for pure post-copy, where the pull phase carries everything.
    cloud::ExperimentConfig pc = ior_config(core::Approach::kPostcopy);
    pc.approach_cfg.postcopy.pull_order = it.order;
    items.push_back({std::string("postcopy/") + it.label, pc});
  }
  std::cerr << "ablation_prefetch_order: running " << items.size() << " simulations...\n";
  const auto results = cloud::run_sweep(items);

  cloud::print_banner(std::cout, "Ablation: pull order under IOR (1 migration)");
  cloud::Table t({"Order", "mig time (s)", "demand stalls", "read thpt", "app time (s)"});
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& r = results[i];
    t.add_row({items[i].label, cloud::fmt_double(r.avg_migration_time, 1),
               cloud::fmt_double(r.migrations.at(0).storage_chunks_pulled, 0),
               cloud::fmt_bytes(r.read_Bps) + "/s",
               cloud::fmt_double(r.app_execution_time, 1)});
  }
  t.print(std::cout);
  return 0;
}
