// Figure 3: live migration performance of a single VM (4 GB RAM) running
// I/O intensive benchmarks (IOR and AsyncWR), migrated once at t=100 s.
//   (a) migration time          (lower is better)
//   (b) total network traffic   (lower is better)
//   (c) normalized average throughput vs the no-migration maximum
//       (higher is better)
#include <iostream>

#include "bench_common.h"

using namespace hm;
using namespace hm::bench;

int main() {
  cloud::print_table1(std::cout);

  // Build the sweep: every approach x {IOR, AsyncWR} + no-migration
  // baselines for panel (c) normalization.
  std::vector<cloud::SweepItem> items;
  for (core::Approach a : kAllApproaches) {
    items.push_back({std::string("ior/") + core::approach_name(a), ior_config(a)});
    items.push_back({std::string("awr/") + core::approach_name(a), asyncwr_config(a)});
  }
  cloud::ExperimentConfig ior_base = ior_config(core::Approach::kHybrid);
  ior_base.perform_migrations = false;
  cloud::ExperimentConfig awr_base = asyncwr_config(core::Approach::kHybrid);
  awr_base.perform_migrations = false;
  items.push_back({"ior/baseline", ior_base});
  items.push_back({"awr/baseline", awr_base});

  std::cerr << "fig3: running " << items.size() << " simulations...\n";
  const auto results = cloud::run_sweep(items);

  auto find = [&](const std::string& label) -> const ExperimentResult& {
    for (std::size_t i = 0; i < items.size(); ++i)
      if (items[i].label == label) return results[i];
    std::abort();
  };

  cloud::print_banner(std::cout, "Figure 3(a): Migration time (s, lower is better)");
  {
    cloud::Table t({"Approach", "IOR", "AsyncWR"});
    for (core::Approach a : kAllApproaches) {
      const auto& ior = find(std::string("ior/") + core::approach_name(a));
      const auto& awr = find(std::string("awr/") + core::approach_name(a));
      t.add_row({core::approach_name(a), cloud::fmt_double(ior.avg_migration_time, 1),
                 cloud::fmt_double(awr.avg_migration_time, 1)});
    }
    t.print(std::cout);
  }

  cloud::print_banner(std::cout, "Figure 3(b): Total network traffic (MB, lower is better)");
  {
    cloud::Table t({"Approach", "IOR", "AsyncWR"});
    for (core::Approach a : kAllApproaches) {
      const auto& ior = find(std::string("ior/") + core::approach_name(a));
      const auto& awr = find(std::string("awr/") + core::approach_name(a));
      t.add_row({core::approach_name(a),
                 cloud::fmt_double(ior.total_traffic / (1024.0 * 1024), 0),
                 cloud::fmt_double(awr.total_traffic / (1024.0 * 1024), 0)});
    }
    t.print(std::cout);
  }

  cloud::print_banner(std::cout,
                      "Figure 3(c): Normalized avg throughput (% of no-migration max, "
                      "higher is better)");
  {
    const auto& ib = find("ior/baseline");
    const auto& ab = find("awr/baseline");
    cloud::Table t({"Approach", "IOR-Read", "IOR-Write", "AsyncWR"});
    for (core::Approach a : kAllApproaches) {
      const auto& ior = find(std::string("ior/") + core::approach_name(a));
      const auto& awr = find(std::string("awr/") + core::approach_name(a));
      t.add_row({core::approach_name(a),
                 cloud::fmt_pct(ior.read_Bps / ib.read_Bps),
                 cloud::fmt_pct(ior.write_Bps / ib.write_Bps),
                 cloud::fmt_pct(awr.write_Bps / ab.write_Bps)});
    }
    t.print(std::cout);
    std::cout << "no-migration maxima: IOR-Read " << cloud::fmt_bytes(ib.read_Bps)
              << "/s, IOR-Write " << cloud::fmt_bytes(ib.write_Bps)
              << "/s, AsyncWR " << cloud::fmt_bytes(ab.write_Bps) << "/s\n";
  }

  cloud::print_banner(std::cout, "Detail: per-migration breakdown");
  {
    cloud::Table t({"Run", "mig time", "downtime", "mem rounds", "mem sent", "pushed",
                    "pulled"});
    for (core::Approach a : kAllApproaches) {
      for (const char* wl : {"ior", "awr"}) {
        const auto& r = find(std::string(wl) + "/" + core::approach_name(a));
        if (r.migrations.empty()) continue;
        const auto& m = r.migrations[0];
        t.add_row({std::string(wl) + "/" + core::approach_name(a),
                   cloud::fmt_seconds(m.migration_time()),
                   cloud::fmt_double(m.downtime_s * 1000, 1) + " ms",
                   std::to_string(m.memory_rounds), cloud::fmt_bytes(m.memory_bytes_sent),
                   cloud::fmt_double(m.storage_chunks_pushed, 0),
                   cloud::fmt_double(m.storage_chunks_pulled, 0)});
      }
    }
    t.print(std::cout);
  }
  return 0;
}
