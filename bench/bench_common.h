// Shared configuration for the figure benches: the paper's full-scale setup
// (Section 5.1) — graphene cluster nodes with ~117.5 MB/s GbE, ~8 GB/s
// switch fabric, 55 MB/s local disks, 4 GB disk images striped in 256 KB
// chunks, VMs with 4 GB RAM, QEMU pre-copy memory migration capped at 1 Gbps.
#pragma once

#include <vector>

#include "cloud/experiment.h"
#include "cloud/report.h"
#include "cloud/sweep.h"

namespace hm::bench {

using cloud::ExperimentConfig;
using cloud::ExperimentResult;
using cloud::WorkloadKind;
using storage::kGiB;
using storage::kKiB;
using storage::kMiB;

inline const std::vector<core::Approach> kAllApproaches = {
    core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
    core::Approach::kPrecopy, core::Approach::kPvfsShared};

/// Paper testbed defaults (Section 5.1).
inline ExperimentConfig paper_config(core::Approach a) {
  ExperimentConfig cfg;
  cfg.approach = a;
  cfg.cluster.num_nodes = 40;  // enough nodes for sources+destinations+striping
  cfg.cluster.nic_Bps = 117.5e6;
  cfg.cluster.network.fabric_Bps = 8.0e9;
  cfg.cluster.network.latency_s = 1e-4;
  // graphene-style edge switches with 10 GbE uplinks: the oversubscription
  // is what makes 30 simultaneous pre-copy migrations contend (Figure 4).
  cfg.cluster.nodes_per_switch = 20;
  cfg.cluster.switch_uplink_Bps = 1.25e9;
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.5e-3};
  cfg.cluster.image = storage::ImageConfig{4 * kGiB, 256 * static_cast<std::uint32_t>(kKiB)};
  cfg.vm.memory.ram_bytes = 4 * kGiB;
  cfg.vm.memory.page_bytes = 256 * kKiB;
  cfg.vm.memory.base_used_bytes = 512 * kMiB;
  cfg.vm.cache.capacity_bytes = 3 * kGiB;
  cfg.vm.cache.dirty_limit_bytes = 800 * kMiB;
  cfg.vm.cache.write_Bps = 266e6;   // paper's observed IOR write ceiling
  cfg.vm.cache.read_Bps = 1.0e9;    // paper's observed IOR read ceiling
  cfg.approach_cfg.hypervisor.migration_speed_Bps = 125e6;  // "1G" QEMU cap
  cfg.first_migration_at = 100.0;   // the paper's warm-up delay
  cfg.max_sim_time = 7200.0;
  return cfg;
}

inline ExperimentConfig ior_config(core::Approach a) {
  ExperimentConfig cfg = paper_config(a);
  cfg.workload = WorkloadKind::kIor;
  // The paper runs 10 iterations; on its testbed these outlast the t=100 s
  // migration point. Our sustained write-back path is slower per iteration,
  // so we run 30 iterations to keep full I/O pressure on the migration
  // window, matching the paper's intent (see EXPERIMENTS.md).
  cfg.ior.iterations = 30;
  cfg.ior.file_bytes = 1 * kGiB;
  cfg.ior.block_bytes = 256 * kKiB;
  cfg.ior.file_offset = 1 * kGiB;
  return cfg;
}

inline ExperimentConfig asyncwr_config(core::Approach a) {
  ExperimentConfig cfg = paper_config(a);
  cfg.workload = WorkloadKind::kAsyncWr;
  cfg.asyncwr.iterations = 1800;  // 1800 MB total (Figure 4 setup)
  cfg.asyncwr.bytes_per_iter = 1 * kMiB;
  cfg.asyncwr.iter_compute_s = 1.0 / 6.0;  // ~6 MB/s pressure
  cfg.asyncwr.file_offset = 1 * kGiB;
  return cfg;
}

inline ExperimentConfig cm1_config(core::Approach a) {
  ExperimentConfig cfg = paper_config(a);
  cfg.workload = WorkloadKind::kCm1;
  cfg.cm1 = workloads::Cm1Config{};  // 8x8 ranks, ~40 s per 200 MB output
  cfg.cluster.num_nodes = 80;        // 64 sources + destinations + headroom
  cfg.vm.compute_slice_s = 0.25;
  return cfg;
}

inline double storage_traffic(const ExperimentResult& r) {
  return r.traffic(net::TrafficClass::kStoragePush) +
         r.traffic(net::TrafficClass::kStoragePull);
}

/// Performance degradation vs a migration-free run: fraction of the
/// computational potential lost (Figure 4(c)'s metric). Both runs execute
/// the same total work, so lost potential shows up as a longer runtime.
inline double degradation(const ExperimentResult& with_mig,
                          const ExperimentResult& baseline) {
  if (with_mig.app_execution_time <= 0) return 0;
  return 1.0 - baseline.app_execution_time / with_mig.app_execution_time;
}

}  // namespace hm::bench
