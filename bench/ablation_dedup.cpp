// Ablation: de-duplication (Section 6 future work). Sweeps the fraction of
// chunk content already present at the destination; duplicates only move a
// 64-byte fingerprint. Shows how storage traffic and migration time shrink
// while the scheme itself is unchanged.
#include <iostream>

#include "bench_common.h"

using namespace hm;
using namespace hm::bench;

int main() {
  const double fractions[] = {0.0, 0.25, 0.5, 0.75};

  std::vector<cloud::SweepItem> items;
  for (double frac : fractions) {
    cloud::ExperimentConfig cfg = ior_config(core::Approach::kHybrid);
    cfg.approach_cfg.hybrid.dedup.enabled = frac > 0;
    cfg.approach_cfg.hybrid.dedup.duplicate_fraction = frac;
    items.push_back({cloud::fmt_pct(frac), cfg});
  }
  std::cerr << "ablation_dedup: running " << items.size() << " simulations...\n";
  const auto results = cloud::run_sweep(items);

  cloud::print_banner(std::cout,
                      "Ablation: content de-duplication under IOR (hybrid, 1 migration)");
  cloud::Table t({"Duplicate fraction", "mig time (s)", "storage traffic",
                  "total traffic"});
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& r = results[i];
    t.add_row({items[i].label, cloud::fmt_double(r.avg_migration_time, 1),
               cloud::fmt_bytes(storage_traffic(r)), cloud::fmt_bytes(r.total_traffic)});
  }
  t.print(std::cout);
  return 0;
}
