// Ablation: the write-count Threshold of the hybrid scheme (Section 4.1).
// Threshold=inf degenerates toward pre-copy behaviour (push everything,
// repeatedly); Threshold=1 approaches post-copy (push once at most). The
// sweep shows the trade-off between migration time, wasted push traffic and
// pull-phase length under IOR.
#include <iostream>

#include "bench_common.h"

using namespace hm;
using namespace hm::bench;

int main() {
  struct Item {
    std::uint32_t threshold;
    const char* label;
  };
  const Item thresholds[] = {{1, "1"},      {2, "2"},   {3, "3 (default)"},
                             {5, "5"},      {10, "10"},
                             {core::HybridConfig::kUnlimitedThreshold, "inf"}};

  std::vector<cloud::SweepItem> items;
  for (const Item& it : thresholds) {
    cloud::ExperimentConfig cfg = ior_config(core::Approach::kHybrid);
    cfg.approach_cfg.hybrid.threshold = it.threshold;
    items.push_back({it.label, cfg});
  }
  std::cerr << "ablation_threshold: running " << items.size() << " simulations...\n";
  const auto results = cloud::run_sweep(items);

  cloud::print_banner(std::cout,
                      "Ablation: hybrid write-count Threshold under IOR (1 migration)");
  cloud::Table t({"Threshold", "mig time (s)", "storage traffic", "pushed", "pulled",
                  "write thpt"});
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& r = results[i];
    const auto& m = r.migrations.at(0);
    t.add_row({items[i].label, cloud::fmt_double(r.avg_migration_time, 1),
               cloud::fmt_bytes(storage_traffic(r)),
               cloud::fmt_double(m.storage_chunks_pushed, 0),
               cloud::fmt_double(m.storage_chunks_pulled, 0),
               cloud::fmt_bytes(r.write_Bps) + "/s"});
  }
  t.print(std::cout);
  return 0;
}
