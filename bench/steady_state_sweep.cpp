// Steady-state scheduler sweep: the continuous-arrival axis of the scale
// sweep. Instead of a fixed burst of launches, each point runs the
// cloud::Scheduler against an open Poisson request stream at fleet sizes
// 8 -> max_vms, with bounded concurrent admission, per-node capacity and
// anti-affinity placement constraints, and high-priority preemption — the
// paper's take-over scenario operated as a service rather than a one-shot
// experiment. Emits one JSON object per fleet size on stdout, rows in the
// fig4_scale_sweep shape (shared emitter: cloud/report.h sweep_row_fields)
// plus the scheduler block: request counters, queue/running peaks, and
// deterministic nearest-rank queueing-delay and downtime p50/p99/p999.
//
// Determinism contract: arrivals, priorities and victim-VM picks are forked
// RNG streams and every scheduling decision happens inside ordinary
// simulator events, so the whole sweep is a pure function of (config,
// seed) — byte-identical across reruns, in both ABLATE_INCREMENTAL regimes
// (modulo solver-work counters, --ignore-solver-work), and under --shards
// (the scheduler spans the fleet, so the plan collapses and shards=N
// trivially reproduces the shards=1 timeline). CI gates all three against
// tests/golden/steady_state_n64.json.
//
// The third argument overrides the arrival/scheduler spec (the --arrivals
// grammar of cloud/scheduler.h). The default, "auto", scales the stream to
// the fleet: rate = n/100 req/s over a 240 s window, 25% high priority,
// concurrency max(2, n/8), capacity 2, 4 anti-affinity groups,
// least-loaded placement, preemption on.
//
// Usage: steady_state_sweep [max_vms] [oversub|nonblocking] [auto|SPEC]
//                           [none|faults:SPEC] [shards|auto]
//        (defaults: 64 oversub auto none 1)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "sim/fault_plan.h"

using namespace hm;
using namespace hm::bench;

namespace {

// The fig4_scale_sweep engine-stress footprint (lean per-VM images so the
// 64-way point stays a seconds-scale run), minus its fixed launch schedule.
cloud::ExperimentConfig steady_config(std::size_t n, bool nonblocking) {
  cloud::ExperimentConfig cfg = asyncwr_config(core::Approach::kHybrid);
  cfg.cluster.image = storage::ImageConfig{1 * kGiB, 256 * static_cast<std::uint32_t>(kKiB)};
  cfg.vm.memory.ram_bytes = 1 * kGiB;
  cfg.vm.memory.base_used_bytes = 128 * kMiB;
  cfg.vm.cache.capacity_bytes = 768 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 256 * kMiB;
  cfg.asyncwr.iterations = 300;
  cfg.asyncwr.file_offset = 256 * kMiB;
  if (nonblocking) {
    cfg.cluster.network.fabric_Bps = net::kUnlimitedRate;
    cfg.cluster.nodes_per_switch = 0;
  } else {
    cfg.cluster.nodes_per_switch = 20;
    cfg.cluster.switch_uplink_Bps = 1.25e9;
  }
  cfg.num_vms = n;
  // A destination pool half the fleet size makes the capacity and
  // anti-affinity constraints bind at peak load instead of being vacuous.
  cfg.num_destinations = std::max<std::size_t>(2, n / 2);
  cfg.num_migrations = 0;  // the scheduler owns the schedule
  cfg.cluster.num_nodes = n + cfg.num_destinations + 8;
  cfg.max_sim_time = 7200.0;
  return cfg;
}

std::string default_spec(std::size_t n) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "poisson:rate=%g,until=240,hi=0.25"
                ";sched:concurrent=%zu,capacity=2,groups=4,"
                "policy=least-loaded,preempt=1",
                static_cast<double>(n) / 100.0, std::max<std::size_t>(2, n / 8));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  bool nonblocking = false;
  if (argc > 2) {
    if (std::strcmp(argv[2], "nonblocking") == 0) {
      nonblocking = true;
    } else if (std::strcmp(argv[2], "oversub") != 0) {
      std::cerr << "usage: steady_state_sweep [max_vms] [oversub|nonblocking]"
                   " [auto|SPEC] [none|faults:SPEC] [shards]\n";
      return 2;
    }
  }
  const std::string spec_arg = argc > 3 ? argv[3] : "auto";
  const std::string faults_arg = argc > 4 ? argv[4] : "none";
  const std::uint32_t shards =
      argc > 5 ? (std::strcmp(argv[5], "auto") == 0
                      ? cloud::ExperimentConfig::kShardsAuto
                      : static_cast<std::uint32_t>(std::strtoul(argv[5], nullptr, 10)))
               : 1;
  sim::FaultSpec faults;
  {
    std::string err;
    if (!sim::parse_fault_spec(faults_arg, &faults, &err)) {
      std::cerr << "steady_state_sweep: " << err << "\n";
      return 2;
    }
  }
  bool any_error = false;
  std::cout << "[\n";
  bool first = true;
  for (std::size_t n = 8; n <= max_n; n *= 2) {
    const std::string spec = spec_arg == "auto" ? default_spec(n) : spec_arg;
    cloud::ExperimentConfig cfg = steady_config(n, nonblocking);
    {
      std::string err;
      if (!cloud::parse_scheduler_spec(spec, &cfg.scheduler, &err)) {
        std::cerr << "steady_state_sweep: " << err << "\n";
        return 2;
      }
    }
    cfg.faults = faults;
    cfg.shards = shards;
    cfg.audit = faults.churn;  // same convention as fig4_scale_sweep
    const bool audit = cfg.audit;
    cloud::Experiment exp(std::move(cfg));
    const ExperimentResult r = exp.run();
    if (!r.error.empty()) {
      std::cerr << "steady_state_sweep: n=" << n << ": " << r.error << "\n";
      any_error = true;
    }
    if (!first) std::cout << ",\n";
    first = false;
    std::cout << "  {\"vms\": " << n
              << ", \"core\": \"" << (nonblocking ? "nonblocking" : "oversub") << "\""
              << ", \"arrivals\": \"" << spec << "\"";
    if (faults.enabled()) std::cout << ", \"faults\": \"" << faults_arg << "\"";
    if (shards != 1) {
      std::cout << ", \"shards\": " << r.shards_used;
      if (!r.shard_fallback_reason.empty())
        std::cout << ", \"shard_fallback_reason\": \"" << r.shard_fallback_reason
                  << "\"";
    }
    if (!r.error.empty()) std::cout << ", \"error\": \"" << r.error << "\"";
    cloud::SweepRowOptions row;
    row.fault_regime = faults.enabled();
    row.scheduler_regime = true;
    row.audit = audit;
    cloud::sweep_row_fields(std::cout, r, row);
    if (audit && !r.audit_violations.empty()) {
      any_error = true;
      for (const std::string& v : r.audit_violations)
        std::cerr << "steady_state_sweep: n=" << n << " AUDIT VIOLATION: " << v
                  << "\n";
    }
    std::cout << "}";
    std::cerr << "steady_state: n=" << n << " wall=" << r.wall_ms << " ms, "
              << r.scheduler.requests << " requests, "
              << r.scheduler.completed << " completed, "
              << r.scheduler.preemptions << " preempted, q-p99="
              << r.scheduler.queueing_p99_s << " s\n";
  }
  std::cout << "\n]\n";
  return any_error ? 1 : 0;
}
