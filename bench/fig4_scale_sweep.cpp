// Engine-perf scaling sweep: Figure 4's concurrent-migration axis pushed to
// datacenter scale (2 -> 256 simultaneous migrations under AsyncWR I/O
// pressure). Emits one JSON object per scenario on stdout so BENCH_*.json
// files can track the engine-throughput trajectory (events/sec, flows/sec,
// wall ms) across PRs, alongside the virtual-time results they must not
// perturb.
//
// Usage: fig4_scale_sweep [max_concurrency]   (default 256)
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.h"

using namespace hm;
using namespace hm::bench;

namespace {

// Paper network parameters, but a leaner per-VM footprint so the 256-way
// point stays a seconds-scale run: the sweep stresses the engine (flow
// churn, solver pressure), not the figure's absolute migration times.
cloud::ExperimentConfig scale_config(std::size_t n) {
  cloud::ExperimentConfig cfg = asyncwr_config(core::Approach::kHybrid);
  cfg.cluster.image = storage::ImageConfig{1 * kGiB, 256 * static_cast<std::uint32_t>(kKiB)};
  cfg.vm.memory.ram_bytes = 1 * kGiB;
  cfg.vm.memory.base_used_bytes = 128 * kMiB;
  cfg.vm.cache.capacity_bytes = 768 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 256 * kMiB;
  cfg.asyncwr.iterations = 300;
  cfg.asyncwr.file_offset = 256 * kMiB;  // must stay inside the 1 GiB image
  cfg.first_migration_at = 20.0;
  cfg.cluster.nodes_per_switch = 20;
  cfg.cluster.switch_uplink_Bps = 1.25e9;
  cfg.num_vms = n;
  cfg.num_migrations = n;
  cfg.num_destinations = n;
  cfg.migration_interval_s = 0.0;  // simultaneous: worst-case churn epoch
  cfg.cluster.num_nodes = 2 * n + 8;
  cfg.max_sim_time = 3600.0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  std::cout << "[\n";
  bool first = true;
  for (std::size_t n = 2; n <= max_n; n *= 2) {
    cloud::Experiment exp(scale_config(n));
    const ExperimentResult r = exp.run();
    const double wall_s = r.wall_ms / 1e3;
    if (!first) std::cout << ",\n";
    first = false;
    std::cout << "  {\"concurrent_migrations\": " << n
              << ", \"completed\": " << (r.completed ? "true" : "false")
              << ", \"sim_s\": " << r.sim_duration
              << ", \"wall_ms\": " << r.wall_ms
              << ", \"events\": " << r.engine_events
              << ", \"events_per_sec\": " << (wall_s > 0 ? r.engine_events / wall_s : 0)
              << ", \"flows\": " << r.engine_flows
              << ", \"flows_per_sec\": " << (wall_s > 0 ? r.engine_flows / wall_s : 0)
              << ", \"solver_recomputes\": " << r.engine_recomputes
              << ", \"avg_migration_s\": " << r.avg_migration_time
              << ", \"total_traffic_gb\": " << r.total_traffic / (1024.0 * 1024 * 1024)
              << "}";
    std::cerr << "fig4_scale: n=" << n << " wall=" << r.wall_ms << " ms, "
              << r.engine_events << " events\n";
  }
  std::cout << "\n]\n";
  return 0;
}
