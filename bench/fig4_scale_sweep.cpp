// Engine-perf scaling sweep: Figure 4's concurrent-migration axis pushed to
// datacenter scale (2 -> 256 simultaneous migrations under AsyncWR I/O
// pressure). Emits one JSON object per scenario on stdout so BENCH_*.json
// files can track the engine-throughput trajectory (events/sec, flows/sec,
// wall ms) across PRs, alongside the virtual-time results they must not
// perturb.
//
// Since the component-scoped incremental solver the sweep also reports
// solver-work counters: component water-fills, flow re-solves (total and
// per epoch) and escalations (epochs where a saturated shared constraint
// forced a global solve). Two core topologies:
//  * oversub      — the historical graphene-style config: 20-node edge
//    switches on 1.25 GB/s uplinks and an 8 GB/s fabric. At high
//    concurrency the shared constraints saturate continuously, so nearly
//    every epoch escalates: this is the incremental solver's worst case and
//    pins down its overhead vs. the always-global seed solver.
//  * nonblocking  — a modern full-bisection Clos core (no finite fabric or
//    uplink constraint binds). Migrations decompose into per-NIC-pair
//    components, which is where component-scoped solving pays: an epoch's
//    chunk churn re-solves only the touched migration's flows.
//
// The third argument staggers migration starts. The default burst
// (stagger 0) launches every migration at the same virtual instant; because
// the sweep's VMs are homogeneous the migrations then run in lockstep and
// every epoch legitimately churns every component — epoch batching's best
// case and the incremental solver's worst. A non-zero stagger desyncs the
// chunk streams the way any real fleet is desynced, so each settle epoch
// carries churn from O(1) migrations and component caching pays off.
//
// The fourth argument selects the workload axis: the default AsyncWR
// generator, or a trace regime ("trace:zipf", "trace:phase:dur=30",
// "trace:file=PATH", ... — any spec parse_trace_spec accepts). Trace
// regimes replay a single-source dirty-page/dirty-chunk stream broadcast to
// every VM, opening the sweep to skewed/bursty/phase-shifting write
// patterns the closed-form workloads cannot produce; generated traces are
// seeded from the experiment seed, so trace sweeps carry the same
// determinism contract (and CI golden gate) as the AsyncWR ones.
//
// The fifth argument selects the fault regime: "none" (default) or any
// --faults spec ("faults:rand:crashes=2,degrades=4", "src-crash@40+15",
// "faults:churn:crash-mtbf=300,...;domains:rack0=0-3", ...) replayed
// identically at every concurrency point. Fault plans (scripted, seeded
// draws and continuous churn processes) fork the experiment seed, so fault
// sweeps are golden-gateable like the rest — and CI runs the same fault and
// churn goldens under both solver regimes to pin the determinism contract
// down under failure timelines. Recovery metrics (retries, re-transferred
// bytes, fault/node downtime, availability counters and p50/p99/p999
// recovery-time + downtime percentiles) appear as extra JSON fields only
// for fault regimes, keeping the committed fault-free goldens
// byte-identical. Churn regimes additionally run the invariant auditor
// (cloud/auditor.h); any liveness/conservation violation fails the sweep.
//
// The sixth argument sets the shard count ("auto" resolves it at plan time
// to min(component count, worker threads available)): every experiment in
// the sweep runs on that many parallel in-process simulator shards (see
// cloud/shard_plan.h). The nonblocking core decomposes into independent
// shards; the oversub core's finite fabric/uplinks run epoch-coupled, with
// a central mirror solver arbitrating the shared constraints every settle
// epoch. Either way the sharded timeline is byte-identical to shards=1 in
// every virtual-time field; only the wall-clock fields move, so a shards=N
// sweep gates against the same committed goldens via
// check_sweep_golden.py --shards.
//
// Usage: fig4_scale_sweep [max_concurrency] [oversub|nonblocking] [stagger_s]
//                         [asyncwr|trace:SPEC] [none|faults:SPEC] [shards|auto]
//        (defaults: 256 oversub 0 asyncwr none 1)
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "sim/fault_plan.h"

using namespace hm;
using namespace hm::bench;

namespace {

// Paper network parameters, but a leaner per-VM footprint so the 256-way
// point stays a seconds-scale run: the sweep stresses the engine (flow
// churn, solver pressure), not the figure's absolute migration times.
cloud::ExperimentConfig scale_config(std::size_t n, bool nonblocking, double stagger_s,
                                     const std::string& workload) {
  cloud::ExperimentConfig cfg = asyncwr_config(core::Approach::kHybrid);
  cfg.cluster.image = storage::ImageConfig{1 * kGiB, 256 * static_cast<std::uint32_t>(kKiB)};
  cfg.vm.memory.ram_bytes = 1 * kGiB;
  cfg.vm.memory.base_used_bytes = 128 * kMiB;
  cfg.vm.cache.capacity_bytes = 768 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 256 * kMiB;
  cfg.asyncwr.iterations = 300;
  cfg.asyncwr.file_offset = 256 * kMiB;  // must stay inside the 1 GiB image
  if (workload != "asyncwr") {
    cfg.workload = cloud::WorkloadKind::kTrace;
    // Geometry tuned to the sweep VMs (1 GiB image / 1 GiB RAM): a 128 MiB
    // anon working set of 256 KiB pages and a 256 MiB file region, with
    // AsyncWR-comparable pressure over a 60 s stream. The spec string can
    // override any of it.
    cfg.trace.gen.page_bytes = 256 * kKiB;
    cfg.trace.gen.pages = 512;
    cfg.trace.gen.chunk_bytes = 256 * static_cast<std::uint32_t>(kKiB);
    cfg.trace.gen.chunks = 1024;
    cfg.trace.gen.file_offset = 256 * kMiB;
    cfg.trace.gen.duration_s = 60.0;
    cfg.trace.gen.dt_s = 0.25;
    cfg.trace.gen.mem_dirty_Bps = 12e6;
    cfg.trace.gen.chunk_write_Bps = 6e6;
    std::string err;
    if (!workloads::parse_trace_spec(workload, &cfg.trace, &err)) {
      std::cerr << "fig4_scale_sweep: " << err << "\n";
      std::exit(2);
    }
  }
  cfg.first_migration_at = 20.0;
  if (nonblocking) {
    cfg.cluster.network.fabric_Bps = net::kUnlimitedRate;
    cfg.cluster.nodes_per_switch = 0;  // flat full-bisection core
  } else {
    cfg.cluster.nodes_per_switch = 20;
    cfg.cluster.switch_uplink_Bps = 1.25e9;
  }
  cfg.num_vms = n;
  cfg.num_migrations = n;
  cfg.num_destinations = n;
  cfg.migration_interval_s = stagger_s;  // 0 = simultaneous burst
  cfg.cluster.num_nodes = 2 * n + 8;
  cfg.max_sim_time = 3600.0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  bool nonblocking = false;
  if (argc > 2) {
    if (std::strcmp(argv[2], "nonblocking") == 0) {
      nonblocking = true;
    } else if (std::strcmp(argv[2], "oversub") != 0) {
      std::cerr << "usage: fig4_scale_sweep [max_concurrency] [oversub|nonblocking]"
                   " [stagger_s] [asyncwr|trace:SPEC] [none|faults:SPEC] [shards]\n";
      return 2;
    }
  }
  const double stagger_s = argc > 3 ? std::strtod(argv[3], nullptr) : 0.0;
  const std::string workload = argc > 4 ? argv[4] : "asyncwr";
  const std::string faults_arg = argc > 5 ? argv[5] : "none";
  const std::uint32_t shards =
      argc > 6 ? (std::strcmp(argv[6], "auto") == 0
                      ? cloud::ExperimentConfig::kShardsAuto
                      : static_cast<std::uint32_t>(std::strtoul(argv[6], nullptr, 10)))
               : 1;
  sim::FaultSpec faults;
  {
    std::string err;
    if (!sim::parse_fault_spec(faults_arg, &faults, &err)) {
      std::cerr << "fig4_scale_sweep: " << err << "\n";
      return 2;
    }
  }
  bool any_error = false;
  std::cout << "[\n";
  bool first = true;
  for (std::size_t n = 2; n <= max_n; n *= 2) {
    cloud::ExperimentConfig cfg = scale_config(n, nonblocking, stagger_s, workload);
    cfg.faults = faults;
    cfg.shards = shards;
    // Churn regimes carry the watchdog/invariant auditor: its periodic tick
    // is part of the timeline, so the churn goldens are generated with it on.
    cfg.audit = faults.churn;
    const bool audit = cfg.audit;
    cloud::Experiment exp(std::move(cfg));
    const ExperimentResult r = exp.run();
    if (!r.error.empty()) {
      // Keep sweeping (and keep the JSON well-formed): the row carries the
      // error and the process exit code reports the failure.
      std::cerr << "fig4_scale_sweep: n=" << n << ": " << r.error << "\n";
      any_error = true;
    }
    const double epochs = r.engine_recomputes ? static_cast<double>(r.engine_recomputes) : 1.0;
    if (!first) std::cout << ",\n";
    first = false;
    std::cout << "  {\"concurrent_migrations\": " << n
              << ", \"core\": \"" << (nonblocking ? "nonblocking" : "oversub") << "\"";
    // The workload/faults/error fields appear only for non-default regimes
    // (or on failure), keeping the committed AsyncWR goldens byte-compatible.
    if (workload != "asyncwr") std::cout << ", \"workload\": \"" << workload << "\"";
    if (faults.enabled()) std::cout << ", \"faults\": \"" << faults_arg << "\"";
    if (shards != 1) {
      std::cout << ", \"shards\": " << r.shards_used;
      if (!r.shard_fallback_reason.empty())
        std::cout << ", \"shard_fallback_reason\": \"" << r.shard_fallback_reason
                  << "\"";
    }
    if (!r.error.empty()) std::cout << ", \"error\": \"" << r.error << "\"";
    std::cout << ", \"stagger_s\": " << stagger_s;
    cloud::SweepRowOptions row;
    row.fault_regime = faults.enabled();
    row.audit = audit;
    cloud::sweep_row_fields(std::cout, r, row);
    if (audit && !r.audit_violations.empty()) {
      any_error = true;
      for (const std::string& v : r.audit_violations)
        std::cerr << "fig4_scale_sweep: n=" << n << " AUDIT VIOLATION: " << v
                  << "\n";
    }
    std::cout << "}";
    std::cerr << "fig4_scale: n=" << n << " wall=" << r.wall_ms << " ms, "
              << r.engine_events << " events, "
              << (r.engine_flows_resolved / epochs) << " flows-resolved/epoch\n";
  }
  std::cout << "\n]\n";
  return any_error ? 1 : 0;
}
