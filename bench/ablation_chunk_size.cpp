// Ablation: chunk / stripe size. The paper picks 256 KB as "large enough to
// avoid excessive fragmentation overhead, yet small enough to avoid
// contention under concurrent read accesses". Smaller chunks mean more
// per-chunk overhead (requests, latency); larger chunks mean coarser dirty
// tracking and more wasted transfer on partial writes.
#include <iostream>

#include "bench_common.h"

using namespace hm;
using namespace hm::bench;

int main() {
  const std::uint32_t sizes_kib[] = {64, 128, 256, 512, 1024};

  std::vector<cloud::SweepItem> items;
  for (std::uint32_t kib : sizes_kib) {
    cloud::ExperimentConfig cfg = ior_config(core::Approach::kHybrid);
    cfg.cluster.image.chunk_bytes = kib * 1024;
    // Page tracking granularity stays at the memory default; IOR blocks stay
    // 256 KB, exercising partial-chunk writes for the larger sizes.
    items.push_back({std::to_string(kib) + " KiB", cfg});
  }
  std::cerr << "ablation_chunk_size: running " << items.size() << " simulations...\n";
  const auto results = cloud::run_sweep(items);

  cloud::print_banner(std::cout, "Ablation: chunk size under IOR (hybrid, 1 migration)");
  cloud::Table t({"Chunk", "mig time (s)", "storage traffic", "total traffic",
                  "write thpt"});
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& r = results[i];
    t.add_row({items[i].label, cloud::fmt_double(r.avg_migration_time, 1),
               cloud::fmt_bytes(storage_traffic(r)), cloud::fmt_bytes(r.total_traffic),
               cloud::fmt_bytes(r.write_Bps) + "/s"});
  }
  t.print(std::cout);
  return 0;
}
