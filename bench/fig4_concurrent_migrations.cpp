// Figure 4: AsyncWR under an increasing number of simultaneous live
// migrations (30 sources, destinations 1 -> 30).
//   (a) average migration time per instance (lower is better)
//   (b) total network traffic               (lower is better)
//   (c) performance degradation (% of max computational potential lost)
#include <iostream>

#include "bench_common.h"

using namespace hm;
using namespace hm::bench;

namespace {
constexpr std::size_t kSources = 30;
const std::size_t kMigrationCounts[] = {1, 10, 20, 30};
}  // namespace

int main() {
  std::vector<cloud::SweepItem> items;
  for (core::Approach a : kAllApproaches) {
    for (std::size_t n : kMigrationCounts) {
      cloud::ExperimentConfig cfg = asyncwr_config(a);
      cfg.cluster.num_nodes = 70;  // 30 sources + 30 dests + headroom
      cfg.num_vms = kSources;
      cfg.num_migrations = n;
      cfg.num_destinations = n;
      cfg.migration_interval_s = 0.0;  // simultaneous
      items.push_back({std::string(core::approach_name(a)) + "/" + std::to_string(n),
                       cfg});
    }
  }
  // Migration-free baseline for the degradation metric.
  cloud::ExperimentConfig base = asyncwr_config(core::Approach::kHybrid);
  base.cluster.num_nodes = 70;
  base.num_vms = kSources;
  base.perform_migrations = false;
  items.push_back({"baseline", base});

  std::cerr << "fig4: running " << items.size() << " simulations...\n";
  const auto results = cloud::run_sweep(items);
  auto find = [&](const std::string& label) -> const ExperimentResult& {
    for (std::size_t i = 0; i < items.size(); ++i)
      if (items[i].label == label) return results[i];
    std::abort();
  };
  const auto& baseline = find("baseline");

  cloud::print_banner(std::cout,
                      "Figure 4(a): Avg. migration time / instance (s, lower is better)");
  {
    cloud::Table t({"Approach", "1", "10", "20", "30"});
    for (core::Approach a : kAllApproaches) {
      std::vector<std::string> row{core::approach_name(a)};
      for (std::size_t n : kMigrationCounts) {
        const auto& r = find(std::string(core::approach_name(a)) + "/" + std::to_string(n));
        row.push_back(cloud::fmt_double(r.avg_migration_time, 1));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  cloud::print_banner(std::cout, "Figure 4(b): Total network traffic (GB, lower is better)");
  {
    cloud::Table t({"Approach", "1", "10", "20", "30"});
    for (core::Approach a : kAllApproaches) {
      std::vector<std::string> row{core::approach_name(a)};
      for (std::size_t n : kMigrationCounts) {
        const auto& r = find(std::string(core::approach_name(a)) + "/" + std::to_string(n));
        row.push_back(cloud::fmt_double(r.total_traffic / (1024.0 * 1024 * 1024), 2));
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  cloud::print_banner(std::cout,
                      "Figure 4(c): Performance degradation (% of max, lower is better)");
  {
    cloud::Table t({"Approach", "1", "10", "20", "30"});
    for (core::Approach a : kAllApproaches) {
      std::vector<std::string> row{core::approach_name(a)};
      for (std::size_t n : kMigrationCounts) {
        const auto& r = find(std::string(core::approach_name(a)) + "/" + std::to_string(n));
        row.push_back(cloud::fmt_pct(degradation(r, baseline)));
      }
      t.add_row(row);
    }
    t.print(std::cout);
    std::cout << "baseline (migration-free) runtime: "
              << cloud::fmt_seconds(baseline.app_execution_time) << "\n";
  }
  return 0;
}
