// Figure 5: CM1 (64 MPI ranks, one per VM) under an increasing number of
// successive live migrations initiated 60 s apart.
//   (a) cumulated migration time                       (lower is better)
//   (b) network traffic excluding CM1 communication     (lower is better)
//   (c) increase in application execution time          (lower is better)
#include <iostream>

#include "bench_common.h"

using namespace hm;
using namespace hm::bench;

namespace {
const std::size_t kMigrationCounts[] = {1, 3, 5, 7};
}

int main() {
  std::vector<cloud::SweepItem> items;
  for (core::Approach a : kAllApproaches) {
    for (std::size_t n : kMigrationCounts) {
      cloud::ExperimentConfig cfg = cm1_config(a);
      cfg.num_migrations = n;
      cfg.num_destinations = n;
      cfg.first_migration_at = 60.0;
      cfg.migration_interval_s = 60.0;  // successive, one per minute
      items.push_back({std::string(core::approach_name(a)) + "/" + std::to_string(n),
                       cfg});
    }
  }
  cloud::ExperimentConfig base = cm1_config(core::Approach::kHybrid);
  base.perform_migrations = false;
  items.push_back({"baseline", base});

  std::cerr << "fig5: running " << items.size() << " simulations (64 ranks each)...\n";
  const auto results = cloud::run_sweep(items);
  auto find = [&](const std::string& label) -> const ExperimentResult& {
    for (std::size_t i = 0; i < items.size(); ++i)
      if (items[i].label == label) return results[i];
    std::abort();
  };
  const auto& baseline = find("baseline");

  cloud::print_banner(std::cout,
                      "Figure 5(a): Cumulated migration time (s, lower is better)");
  {
    cloud::Table t({"Approach", "1", "3", "5", "7"});
    for (core::Approach a : kAllApproaches) {
      std::vector<std::string> row{core::approach_name(a)};
      for (std::size_t n : kMigrationCounts)
        row.push_back(cloud::fmt_double(
            find(std::string(core::approach_name(a)) + "/" + std::to_string(n))
                .total_migration_time,
            1));
      t.add_row(row);
    }
    t.print(std::cout);
  }

  cloud::print_banner(
      std::cout, "Figure 5(b): Migration traffic, excl. CM1 comm (GB, lower is better)");
  {
    cloud::Table t({"Approach", "1", "3", "5", "7"});
    for (core::Approach a : kAllApproaches) {
      std::vector<std::string> row{core::approach_name(a)};
      for (std::size_t n : kMigrationCounts)
        row.push_back(cloud::fmt_double(
            find(std::string(core::approach_name(a)) + "/" + std::to_string(n))
                    .migration_traffic /
                (1024.0 * 1024 * 1024),
            2));
      t.add_row(row);
    }
    t.print(std::cout);
  }

  cloud::print_banner(
      std::cout, "Figure 5(c): Increase in app execution time (s, lower is better)");
  {
    cloud::Table t({"Approach", "1", "3", "5", "7"});
    for (core::Approach a : kAllApproaches) {
      std::vector<std::string> row{core::approach_name(a)};
      for (std::size_t n : kMigrationCounts) {
        const auto& r =
            find(std::string(core::approach_name(a)) + "/" + std::to_string(n));
        row.push_back(
            cloud::fmt_double(r.app_execution_time - baseline.app_execution_time, 1));
      }
      t.add_row(row);
    }
    t.print(std::cout);
    std::cout << "baseline (migration-free) CM1 runtime: "
              << cloud::fmt_seconds(baseline.app_execution_time) << "\n";
  }
  return 0;
}
