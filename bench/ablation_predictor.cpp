// Ablation: migration-moment prediction (Section 6 future work). IOR
// alternates write bursts and read phases; initiating the migration blindly
// lands it in a write burst, while the I/O monitor waits for a lull. The
// bench compares immediate vs lull-scheduled migrations.
//
// A second table runs the same comparison on a generated bursty trace
// (trace:burst — 2 s write bursts every 10 s): unlike IOR's long phases the
// burst stream has hard on/off edges, which is where lull prediction pays
// the most — the planner consistently starts inside the idle window.
#include <iostream>

#include "bench_common.h"
#include "cloud/predictor.h"
#include "workloads/trace_gen.h"

using namespace hm;
using namespace hm::bench;

namespace {

struct Outcome {
  double initiated_at = 0;
  double migration_time = 0;
  double observed_rate = 0;
  bool forced = false;
};

sim::Task planned_migration(cloud::MigrationPlanner* planner, vm::VmInstance* vm,
                            net::NodeId dst, cloud::LullConfig cfg, bool* done) {
  co_await planner->migrate_at_lull(*vm, dst, cfg);
  *done = true;
}

sim::Task immediate_migration(cloud::Middleware* mw, vm::VmInstance* vm, net::NodeId dst,
                              bool* done) {
  co_await mw->migrate(*vm, dst);
  *done = true;
}

/// Bursty dirty-chunk stream: 2 s of ~60 MB/s writes every 10 s, modest
/// background memory dirtying — hard on/off edges for the lull detector.
workloads::TraceData burst_trace(const cloud::ExperimentConfig& cfg) {
  workloads::TraceGenSpec spec;
  spec.pattern = workloads::TracePattern::kBurst;
  spec.duration_s = 240.0;
  spec.dt_s = 0.25;
  spec.page_bytes = cfg.vm.memory.page_bytes;
  spec.pages = 512;  // 128 MiB anon working set
  spec.chunk_bytes = cfg.cluster.image.chunk_bytes;
  spec.chunks = 1024;  // 256 MiB file region
  spec.file_offset = 1 * kGiB;
  spec.mem_dirty_Bps = 4e6;
  spec.chunk_write_Bps = 6e6;
  spec.burst_on_s = 2.0;
  spec.burst_off_s = 8.0;
  spec.burst_multiplier = 10.0;
  return workloads::generate_trace(spec, cfg.seed);
}

Outcome run_one(bool use_predictor, double lull_threshold, bool use_trace) {
  cloud::ExperimentConfig cfg = ior_config(core::Approach::kHybrid);
  cfg.normalize();
  sim::Simulator simulator;
  vm::Cluster cluster(simulator, cfg.cluster);
  cloud::Middleware mw(simulator, cluster, cfg.approach_cfg);
  vm::VmInstance& vm = mw.deploy(0, cfg.vm);
  workloads::IorWorkload ior(cfg.ior);
  const workloads::TraceData trace = use_trace ? burst_trace(cfg) : workloads::TraceData{};
  workloads::TraceWorkload trace_wl(&trace);

  bool wl_done = false, mig_done = false;
  workloads::Workload* wl = use_trace ? static_cast<workloads::Workload*>(&trace_wl)
                                      : static_cast<workloads::Workload*>(&ior);
  simulator.spawn([](workloads::Workload* w, vm::VmInstance* v, bool* d) -> sim::Task {
    co_await w->run(*v);
    *d = true;
  }(wl, &vm, &wl_done));

  cloud::MigrationPlanner planner(simulator, mw);
  cloud::LullConfig lull;
  lull.lull_threshold_Bps = lull_threshold;
  lull.deadline_s = 120.0;
  // Launch context behind one pointer so the timer callback fits SmallFn's
  // two-word capture budget.
  struct Launch {
    sim::Simulator& simulator;
    cloud::MigrationPlanner& planner;
    cloud::Middleware& mw;
    vm::VmInstance& vm;
    cloud::LullConfig lull;
    bool use_predictor;
    bool* mig_done;
    void go() {
      if (use_predictor)
        simulator.spawn(planned_migration(&planner, &vm, 1, lull, mig_done));
      else
        simulator.spawn(immediate_migration(&mw, &vm, 1, mig_done));
    }
  } launch{simulator, planner, mw, vm, lull, use_predictor, &mig_done};
  simulator.schedule(cfg.first_migration_at, [&launch] { launch.go(); });
  simulator.run_while_pending([&] { return wl_done && mig_done; });

  if (use_trace && trace_wl.failed()) {
    std::cerr << "ablation_predictor: trace replay failed: " << trace_wl.error() << "\n";
    std::exit(1);
  }
  Outcome out;
  const auto& m = mw.metrics().migrations().at(0);
  out.initiated_at = m.t_request;
  out.migration_time = m.migration_time();
  out.observed_rate = planner.observed_lull_rate_Bps();
  out.forced = planner.deadline_forced();
  return out;
}

}  // namespace

void run_table(std::ostream& os, bool use_trace) {
  cloud::Table t({"Policy", "initiated at", "mig time (s)", "rate at start"});
  const Outcome blind = run_one(false, 0, use_trace);
  t.add_row({"immediate (t=100s)", cloud::fmt_seconds(blind.initiated_at),
             cloud::fmt_double(blind.migration_time, 1), "-"});
  for (double thr : {30e6, 60e6, 90e6}) {
    const Outcome planned = run_one(true, thr, use_trace);
    t.add_row({"lull < " + cloud::fmt_bytes(thr) + "/s" +
                   (planned.forced ? " (deadline)" : ""),
               cloud::fmt_seconds(planned.initiated_at),
               cloud::fmt_double(planned.migration_time, 1),
               cloud::fmt_bytes(planned.observed_rate) + "/s"});
  }
  t.print(os);
}

int main() {
  std::cerr << "ablation_predictor: running 8 simulations...\n";
  cloud::print_banner(std::cout,
                      "Ablation: migration-moment prediction under IOR (hybrid)");
  run_table(std::cout, /*use_trace=*/false);
  cloud::print_banner(std::cout,
                      "Ablation: prediction under a bursty trace (trace:burst, hybrid)");
  run_table(std::cout, /*use_trace=*/true);
  std::cout << "\nWaiting for an I/O lull initiates the migration when less disk state\n"
               "is changing, shortening the transfer at the cost of a delayed start.\n"
               "The bursty trace shows the clean case: the planner starts inside an\n"
               "idle window instead of mid-burst.\n";
  return 0;
}
