// Ablation: migration-moment prediction (Section 6 future work). IOR
// alternates write bursts and read phases; initiating the migration blindly
// lands it in a write burst, while the I/O monitor waits for a lull. The
// bench compares immediate vs lull-scheduled migrations.
#include <iostream>

#include "bench_common.h"
#include "cloud/predictor.h"

using namespace hm;
using namespace hm::bench;

namespace {

struct Outcome {
  double initiated_at = 0;
  double migration_time = 0;
  double observed_rate = 0;
  bool forced = false;
};

sim::Task planned_migration(cloud::MigrationPlanner* planner, vm::VmInstance* vm,
                            net::NodeId dst, cloud::LullConfig cfg, bool* done) {
  co_await planner->migrate_at_lull(*vm, dst, cfg);
  *done = true;
}

sim::Task immediate_migration(cloud::Middleware* mw, vm::VmInstance* vm, net::NodeId dst,
                              bool* done) {
  co_await mw->migrate(*vm, dst);
  *done = true;
}

Outcome run_one(bool use_predictor, double lull_threshold) {
  cloud::ExperimentConfig cfg = ior_config(core::Approach::kHybrid);
  cfg.normalize();
  sim::Simulator simulator;
  vm::Cluster cluster(simulator, cfg.cluster);
  cloud::Middleware mw(simulator, cluster, cfg.approach_cfg);
  vm::VmInstance& vm = mw.deploy(0, cfg.vm);
  workloads::IorWorkload ior(cfg.ior);

  bool wl_done = false, mig_done = false;
  simulator.spawn([](workloads::IorWorkload* w, vm::VmInstance* v, bool* d) -> sim::Task {
    co_await w->run(*v);
    *d = true;
  }(&ior, &vm, &wl_done));

  cloud::MigrationPlanner planner(simulator, mw);
  cloud::LullConfig lull;
  lull.lull_threshold_Bps = lull_threshold;
  lull.deadline_s = 120.0;
  // Launch context behind one pointer so the timer callback fits SmallFn's
  // two-word capture budget.
  struct Launch {
    sim::Simulator& simulator;
    cloud::MigrationPlanner& planner;
    cloud::Middleware& mw;
    vm::VmInstance& vm;
    cloud::LullConfig lull;
    bool use_predictor;
    bool* mig_done;
    void go() {
      if (use_predictor)
        simulator.spawn(planned_migration(&planner, &vm, 1, lull, mig_done));
      else
        simulator.spawn(immediate_migration(&mw, &vm, 1, mig_done));
    }
  } launch{simulator, planner, mw, vm, lull, use_predictor, &mig_done};
  simulator.schedule(cfg.first_migration_at, [&launch] { launch.go(); });
  simulator.run_while_pending([&] { return wl_done && mig_done; });

  Outcome out;
  const auto& m = mw.metrics().migrations().at(0);
  out.initiated_at = m.t_request;
  out.migration_time = m.migration_time();
  out.observed_rate = planner.observed_lull_rate_Bps();
  out.forced = planner.deadline_forced();
  return out;
}

}  // namespace

int main() {
  std::cerr << "ablation_predictor: running 4 simulations...\n";
  cloud::print_banner(std::cout,
                      "Ablation: migration-moment prediction under IOR (hybrid)");
  cloud::Table t({"Policy", "initiated at", "mig time (s)", "rate at start"});
  const Outcome blind = run_one(false, 0);
  t.add_row({"immediate (t=100s)", cloud::fmt_seconds(blind.initiated_at),
             cloud::fmt_double(blind.migration_time, 1), "-"});
  for (double thr : {30e6, 60e6, 90e6}) {
    const Outcome planned = run_one(true, thr);
    t.add_row({"lull < " + cloud::fmt_bytes(thr) + "/s" +
                   (planned.forced ? " (deadline)" : ""),
               cloud::fmt_seconds(planned.initiated_at),
               cloud::fmt_double(planned.migration_time, 1),
               cloud::fmt_bytes(planned.observed_rate) + "/s"});
  }
  t.print(std::cout);
  std::cout << "\nWaiting for an I/O lull initiates the migration when less disk state\n"
               "is changing, shortening the transfer at the cost of a delayed start.\n";
  return 0;
}
