// Engine microbenchmarks (google-benchmark): raw DES event throughput,
// coroutine overhead, water-filling solver scaling, and chunk store ops.
// These bound how large a scenario the harness can simulate per wall-second.
#include <benchmark/benchmark.h>

#include "cloud/experiment.h"
#include "net/flow_network.h"
#include "sim/random.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "storage/chunk_store.h"
#include "vm/memory.h"

namespace {

using namespace hm;

void BM_EventThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator s;
    int count = 0;
    for (int i = 0; i < n; ++i)
      s.schedule(static_cast<double>(i) * 1e-6, [&count] { ++count; });
    s.run();
    events += s.events_processed();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["events/sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

// Timer cancellation churn: schedule/cancel pairs exercise handle overhead
// (previously weak_ptr lock, now generation-counter checks).
void BM_TimerCancelChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < n; ++i) {
      auto t = s.schedule(1.0, [] {});
      t.cancel();
      benchmark::DoNotOptimize(t.active());
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TimerCancelChurn)->Arg(100000);

sim::Task ping_pong(sim::Simulator* s, int hops) {
  for (int i = 0; i < hops; ++i) co_await s->delay(1e-6);
}

void BM_CoroutineDelayLoop(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    s.spawn(ping_pong(&s, hops));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_CoroutineDelayLoop)->Arg(1000)->Arg(10000);

sim::Task one_transfer(net::FlowNetwork* net, net::NodeId a, net::NodeId b) {
  co_await net->transfer(a, b, 1e6, net::TrafficClass::kMemory);
}

void BM_FlowNetworkChurn(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    net::FlowNetwork net(s, net::FlowNetworkConfig{8e9, 0.0, 8e9});
    std::vector<net::NodeId> nodes;
    for (int i = 0; i < 32; ++i) nodes.push_back(net.add_node(117.5e6));
    for (int i = 0; i < flows; ++i)
      s.spawn(one_transfer(&net, nodes[i % 32], nodes[(i + 7) % 32]));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowNetworkChurn)->Arg(64)->Arg(256)->Arg(1024);

// Water-filling solver under chunk-burst churn: the BACKGROUND_PUSH pattern
// of the paper — waves of equal-size chunk transfers released at the same
// virtual instant across a shared fabric. Dominated by how many max-min
// solves the engine runs per wave (N without epoch batching, 1 with).
sim::Task burst_member(net::FlowNetwork* net, net::NodeId a, net::NodeId b) {
  co_await net->transfer(a, b, 256.0 * 1024, net::TrafficClass::kStoragePush);
}

void BM_WaterFill(benchmark::State& state) {
  const int flows_per_wave = static_cast<int>(state.range(0));
  constexpr int kWaves = 8;
  constexpr int kNodes = 32;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator s;
    net::FlowNetwork net(s, net::FlowNetworkConfig{8e9, 0.0, 8e9});
    // Wave context behind one pointer: event callbacks fit SmallFn's budget.
    struct Wave {
      sim::Simulator& s;
      net::FlowNetwork& net;
      std::vector<net::NodeId> nodes;
      int flows;
      void release() {
        for (int i = 0; i < flows; ++i)
          s.spawn(burst_member(&net, nodes[i % kNodes], nodes[(i + 11) % kNodes]));
      }
    } wave{s, net, {}, flows_per_wave};
    for (int i = 0; i < kNodes; ++i) wave.nodes.push_back(net.add_node(117.5e6));
    for (int w = 0; w < kWaves; ++w) s.schedule(w * 0.5, [&wave] { wave.release(); });
    s.run();
    events += s.events_processed();
  }
  state.SetItemsProcessed(state.iterations() * flows_per_wave * kWaves);
  state.counters["events/sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WaterFill)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

// Zero-delay wakeup storm: N coroutines parked on a Notification are woken
// in waves. Every wakeup is one fast-lane event — the dominant event class
// in the scale sweeps — so this isolates raw dispatch cost for the path
// that used to pay slot allocation plus a std::function per wakeup.
sim::Task wakeup_waiter(sim::Notification* note, std::uint64_t* wakeups) {
  for (;;) {
    co_await note->wait();
    ++*wakeups;
  }
}

void BM_ZeroDelayWakeup(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  constexpr int kRounds = 200;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator s;
    sim::Notification note(s);
    std::uint64_t wakeups = 0;
    for (int w = 0; w < waiters; ++w) s.spawn(wakeup_waiter(&note, &wakeups));
    struct Driver {
      sim::Simulator& s;
      sim::Notification& note;
      int left;
      void tick() {
        note.notify_all();
        if (--left > 0) s.schedule(1e-6, [this] { tick(); });
      }
    } driver{s, note, kRounds};
    s.schedule(1e-6, [&driver] { driver.tick(); });
    s.run();
    events += s.events_processed();
    benchmark::DoNotOptimize(wakeups);
  }
  state.SetItemsProcessed(state.iterations() * waiters * kRounds);
  state.counters["events/sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ZeroDelayWakeup)->Arg(64)->Arg(1024);

// Pure yield churn: K coroutines each re-queue themselves M times at the
// same virtual instant. Before the fast lane each hop was a clamp, a slot
// allocation and a fresh callable; now it is one ring push.
sim::Task yield_churner(sim::Simulator* s, int yields) {
  for (int i = 0; i < yields; ++i) co_await s->yield();
}

void BM_YieldChurn(benchmark::State& state) {
  const int coros = static_cast<int>(state.range(0));
  constexpr int kYields = 1000;
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < coros; ++i) s.spawn(yield_churner(&s, kYields));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * coros * kYields);
}
BENCHMARK(BM_YieldChurn)->Arg(1)->Arg(64);

// Incremental-solver churn: 1000 long-lived background flows over disjoint
// NIC pairs while short flows join and leave one pair at a time. With
// component-scoped solving (arg 1) each churn epoch re-solves only the
// touched pair; the full-solve ablation (arg 0) re-derives every rate each
// epoch. The spread between the two arms is the incremental win.
void BM_IncrementalSolveChurn(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  constexpr int kPairs = 500;  // 2 background flows per pair = 1000 flows
  constexpr int kChurn = 256;
  std::uint64_t resolved = 0, epochs = 0;
  for (auto _ : state) {
    sim::Simulator s;
    net::FlowNetwork net(s, net::FlowNetworkConfig{net::kUnlimitedRate, 0.0, 8e9});
    net.set_incremental(incremental);
    std::vector<net::NodeId> src, dst;
    for (int p = 0; p < kPairs; ++p) {
      src.push_back(net.add_node(117.5e6));
      dst.push_back(net.add_node(117.5e6));
    }
    for (int p = 0; p < kPairs; ++p)
      for (int k = 0; k < 2; ++k)
        s.spawn([](net::FlowNetwork* n, net::NodeId a, net::NodeId b) -> sim::Task {
          co_await n->transfer(a, b, 1e18, net::TrafficClass::kMemory);
        }(&net, src[p], dst[p]));
    struct Churn {
      sim::Simulator& s;
      net::FlowNetwork& net;
      std::vector<net::NodeId>& src;
      std::vector<net::NodeId>& dst;
      void kick(int i) {
        s.spawn([](net::FlowNetwork* n, net::NodeId a, net::NodeId b) -> sim::Task {
          co_await n->transfer(a, b, 1e6, net::TrafficClass::kStoragePush);
        }(&net, src[i % kPairs], dst[i % kPairs]));
      }
    } churn{s, net, src, dst};
    for (int i = 0; i < kChurn; ++i) {
      s.schedule(1.0 + i, [c = &churn, i] { c->kick(i); });
    }
    s.run_until(kChurn + 10.0);
    resolved += net.touched_flow_count();
    epochs += net.recompute_count();
  }
  state.SetItemsProcessed(state.iterations() * kChurn);
  state.counters["flows_resolved_per_epoch"] =
      epochs ? static_cast<double>(resolved) / static_cast<double>(epochs) : 0.0;
}
BENCHMARK(BM_IncrementalSolveChurn)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Dirty-bitmap round scan: one pre-copy round = touch a working set, then
// snapshot-and-clear the dirty map. Sparse (1% of pages) exercises the
// word-skip path; dense (every page) the popcount/memset path. The seed's
// byte-per-page vector walked all pages in both cases.
void BM_DirtyRoundScan(benchmark::State& state) {
  const bool dense = state.range(0) != 0;
  vm::GuestMemoryConfig cfg;  // 4 GiB / 64 KiB pages = 65536 pages
  vm::GuestMemory mem(cfg);
  sim::Rng rng(42);
  const std::uint64_t page = cfg.page_bytes;
  const std::uint64_t pages = mem.pages();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    if (dense) {
      mem.touch_range(0, cfg.ram_bytes);
    } else {
      for (std::uint64_t i = 0; i < pages / 100; ++i)
        mem.touch_range(rng.uniform(pages) * page, 1);
    }
    bytes += mem.take_dirty_round();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * pages));
}
BENCHMARK(BM_DirtyRoundScan)->Arg(0)->Arg(1);

// Per-chunk data-path microbenches: the push leg (read -> transfer -> write)
// and the pull leg (request/response round trip + disk legs) that dominate
// wall time once the solver is incremental. These isolate coroutine-frame
// and allocator overhead per chunk operation.
sim::Task push_path_chain(net::FlowNetwork* net, storage::ChunkStore* src,
                          storage::ChunkStore* dst, net::NodeId a, net::NodeId b, int n) {
  const double chunk = src->image().chunk_bytes;
  for (int i = 0; i < n; ++i) {
    const auto c = static_cast<storage::ChunkId>(i % src->num_chunks());
    co_await src->read_chunk(c);
    co_await net->transfer(a, b, chunk, net::TrafficClass::kStoragePush);
    co_await dst->write_chunk(c);
  }
}

sim::Task seed_chunks(storage::ChunkStore* store, int n) {
  for (int i = 0; i < n; ++i)
    co_await store->write_chunk(static_cast<storage::ChunkId>(i));
}

void BM_TransferPath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    net::FlowNetwork net(s, net::FlowNetworkConfig{8e9, 100e-6, 8e9});
    const net::NodeId a = net.add_node(117.5e6);
    const net::NodeId b = net.add_node(117.5e6);
    storage::Disk disk_a(s, storage::DiskConfig{55e6, 0.0});
    storage::Disk disk_b(s, storage::DiskConfig{55e6, 0.0});
    const storage::ImageConfig img{64 * storage::kMiB,
                                   256 * static_cast<std::uint32_t>(1024)};
    storage::ChunkStore src(s, disk_a, img);
    storage::ChunkStore dst(s, disk_b, img);
    s.spawn(seed_chunks(&src, static_cast<int>(src.num_chunks())));
    s.run();
    s.spawn(push_path_chain(&net, &src, &dst, a, b, n));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TransferPath)->Arg(10000)->Unit(benchmark::kMillisecond);

sim::Task pull_path_chain(net::FlowNetwork* net, storage::ChunkStore* src,
                          storage::ChunkStore* dst, net::NodeId src_node,
                          net::NodeId dst_node, int n) {
  const double chunk = src->image().chunk_bytes;
  for (int i = 0; i < n; ++i) {
    const auto c = static_cast<storage::ChunkId>(i % src->num_chunks());
    // The paper's pull leg: control request, source read, payload, local write.
    co_await net->transfer(dst_node, src_node, 256.0, net::TrafficClass::kControl);
    co_await src->read_chunk(c);
    co_await net->transfer(src_node, dst_node, chunk, net::TrafficClass::kStoragePull);
    co_await dst->write_chunk(c);
  }
}

void BM_PullPath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    net::FlowNetwork net(s, net::FlowNetworkConfig{8e9, 100e-6, 8e9});
    const net::NodeId a = net.add_node(117.5e6);
    const net::NodeId b = net.add_node(117.5e6);
    storage::Disk disk_a(s, storage::DiskConfig{55e6, 0.0});
    storage::Disk disk_b(s, storage::DiskConfig{55e6, 0.0});
    const storage::ImageConfig img{64 * storage::kMiB,
                                   256 * static_cast<std::uint32_t>(1024)};
    storage::ChunkStore src(s, disk_a, img);
    storage::ChunkStore dst(s, disk_b, img);
    s.spawn(seed_chunks(&src, static_cast<int>(src.num_chunks())));
    s.run();
    s.spawn(pull_path_chain(&net, &src, &dst, a, b, n));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PullPath)->Arg(10000)->Unit(benchmark::kMillisecond);

sim::Task write_chunks(storage::ChunkStore* store, int n) {
  for (int i = 0; i < n; ++i)
    co_await store->write_chunk(static_cast<storage::ChunkId>(i % store->num_chunks()));
}

void BM_ChunkStoreWrites(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    storage::Disk disk(s, storage::DiskConfig{55e6, 0.0});
    storage::ChunkStore store(s, disk,
                              storage::ImageConfig{1 * storage::kGiB,
                                                   256 * static_cast<std::uint32_t>(1024)});
    s.spawn(write_chunks(&store, n));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChunkStoreWrites)->Arg(1000)->Arg(10000);

// Settle-epoch rendezvous cost: N shard threads spinning through the
// EpochBarrier + mailbox exchange (one small message to every peer per
// epoch). Bounds how fine an epoch granularity the conservative-window
// PDES mode can afford before synchronization dominates.
void BM_ShardBarrier(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  constexpr int kEpochsPerIter = 200;
  std::uint64_t epochs = 0;
  for (auto _ : state) {
    sim::ShardedSimulator sim(shards);
    const auto st = sim.run_epochs([&](std::uint32_t s) {
      for (int e = 0; e < kEpochsPerIter; ++e) {
        for (std::uint32_t to = 0; to < shards; ++to)
          if (to != s) sim.post(s, to, static_cast<double>(e), s);
        benchmark::DoNotOptimize(sim.exchange(s).size());
      }
    });
    epochs += st.epochs;
  }
  state.SetItemsProcessed(state.iterations() * kEpochsPerIter);
  state.counters["epochs/sec"] =
      benchmark::Counter(static_cast<double>(epochs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

// The epoch-coupled round is TWO rendezvous per global instant: phase A
// agrees on t* (the min over per-shard next-event times), phase B folds the
// shards' value-carrying demand messages into the coordinator's mirror and
// broadcasts rate caps back. This prices that double barrier + demand fold
// against the single-exchange independent epoch above — the fixed
// synchronization overhead every coupled settle instant pays.
void BM_EpochCoupledBarrier(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  constexpr int kRoundsPerIter = 200;
  std::uint64_t rounds = 0;
  double folded = 0.0;
  for (auto _ : state) {
    sim::ShardedSimulator sim(shards);
    bool phase_b = false;
    sim.set_reduce_hook([&](std::uint64_t) {
      if (phase_b)  // phase B: the coordinator folds shard demand
        for (const sim::ShardMessage& m : sim.inbox(0)) folded += m.value;
      phase_b = !phase_b;
    });
    sim.run_epochs([&](std::uint32_t s) {
      for (int r = 0; r < kRoundsPerIter; ++r) {
        sim.barrier().arrive_and_wait();  // phase A: agree on t*
        sim.post(s, 0, static_cast<double>(r), s, 1.0 + s);
        sim.barrier().arrive_and_wait();  // phase B: fold demand, take rates
      }
    });
    rounds += kRoundsPerIter;
  }
  benchmark::DoNotOptimize(folded);
  state.SetItemsProcessed(state.iterations() * kRoundsPerIter);
  state.counters["rounds/sec"] =
      benchmark::Counter(static_cast<double>(rounds), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EpochCoupledBarrier)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

// 64-VM AsyncWR migration fleet shared by the two sweep-point benchmarks
// below; only the network core and launch pattern differ.
cloud::ExperimentConfig sharded_sweep_config() {
  using storage::kMiB;
  cloud::ExperimentConfig cfg;
  cfg.approach = core::Approach::kHybrid;
  cfg.cluster.image = storage::ImageConfig{256 * kMiB, 256 * static_cast<std::uint32_t>(1024)};
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.0};
  cfg.cluster.network.fabric_Bps = net::kUnlimitedRate;
  cfg.vm.memory.ram_bytes = 256 * kMiB;
  cfg.vm.memory.page_bytes = 256 * 1024;
  cfg.vm.memory.base_used_bytes = 64 * kMiB;
  cfg.vm.cache.capacity_bytes = 192 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 64 * kMiB;
  cfg.vm.cache.write_Bps = 200e6;
  cfg.workload = cloud::WorkloadKind::kAsyncWr;
  cfg.asyncwr.iterations = 120;
  cfg.asyncwr.file_offset = 64 * kMiB;
  cfg.num_vms = 64;
  cfg.num_migrations = 64;
  cfg.num_destinations = 64;
  cfg.first_migration_at = 5.0;
  cfg.migration_interval_s = 0.05;
  return cfg;
}

// One decomposable sweep point (staggered AsyncWR fleet on a non-blocking
// core) at 1/2/4/8 simulator shards: the multicore speedup curve for the
// independent-slice mode, timeline byte-identical across all arguments.
void BM_ShardedSweepPoint(benchmark::State& state) {
  cloud::ExperimentConfig cfg = sharded_sweep_config();
  cfg.shards = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    cloud::Experiment exp(cfg);
    const cloud::ExperimentResult res = exp.run();
    events += res.engine_events;
    benchmark::DoNotOptimize(res.sim_duration);
  }
  state.counters["events/sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedSweepPoint)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// The same fleet forced through finite shared constraints — oversubscribed
// fabric aggregate plus rack uplinks, every migration launched at one
// instant — so the plan runs EPOCH-COUPLED instead of independent: shards
// advance in conservative lockstep while the coordinator's mirror solver
// arbitrates the shared constraints each settle round. Timeline stays
// byte-identical across all arguments; the per-shard delta against
// BM_ShardedSweepPoint is the price of the coupled round protocol.
void BM_EpochCoupledSweepPoint(benchmark::State& state) {
  cloud::ExperimentConfig cfg = sharded_sweep_config();
  cfg.cluster.network.fabric_Bps = 8e9;
  cfg.cluster.nodes_per_switch = 20;
  cfg.cluster.switch_uplink_Bps = 1.25e9;
  cfg.migration_interval_s = 0.0;
  cfg.shards = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    cloud::Experiment exp(cfg);
    const cloud::ExperimentResult res = exp.run();
    events += res.engine_events;
    benchmark::DoNotOptimize(res.sim_duration);
  }
  state.counters["events/sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EpochCoupledSweepPoint)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
