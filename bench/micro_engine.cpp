// Engine microbenchmarks (google-benchmark): raw DES event throughput,
// coroutine overhead, water-filling solver scaling, and chunk store ops.
// These bound how large a scenario the harness can simulate per wall-second.
#include <benchmark/benchmark.h>

#include "net/flow_network.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "storage/chunk_store.h"

namespace {

using namespace hm;

void BM_EventThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator s;
    int count = 0;
    for (int i = 0; i < n; ++i)
      s.schedule(static_cast<double>(i) * 1e-6, [&count] { ++count; });
    s.run();
    events += s.events_processed();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["events/sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

// Timer cancellation churn: schedule/cancel pairs exercise handle overhead
// (previously weak_ptr lock, now generation-counter checks).
void BM_TimerCancelChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < n; ++i) {
      auto t = s.schedule(1.0, [] {});
      t.cancel();
      benchmark::DoNotOptimize(t.active());
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TimerCancelChurn)->Arg(100000);

sim::Task ping_pong(sim::Simulator* s, int hops) {
  for (int i = 0; i < hops; ++i) co_await s->delay(1e-6);
}

void BM_CoroutineDelayLoop(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    s.spawn(ping_pong(&s, hops));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_CoroutineDelayLoop)->Arg(1000)->Arg(10000);

sim::Task one_transfer(net::FlowNetwork* net, net::NodeId a, net::NodeId b) {
  co_await net->transfer(a, b, 1e6, net::TrafficClass::kMemory);
}

void BM_FlowNetworkChurn(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    net::FlowNetwork net(s, net::FlowNetworkConfig{8e9, 0.0, 8e9});
    std::vector<net::NodeId> nodes;
    for (int i = 0; i < 32; ++i) nodes.push_back(net.add_node(117.5e6));
    for (int i = 0; i < flows; ++i)
      s.spawn(one_transfer(&net, nodes[i % 32], nodes[(i + 7) % 32]));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowNetworkChurn)->Arg(64)->Arg(256)->Arg(1024);

// Water-filling solver under chunk-burst churn: the BACKGROUND_PUSH pattern
// of the paper — waves of equal-size chunk transfers released at the same
// virtual instant across a shared fabric. Dominated by how many max-min
// solves the engine runs per wave (N without epoch batching, 1 with).
sim::Task burst_member(net::FlowNetwork* net, net::NodeId a, net::NodeId b) {
  co_await net->transfer(a, b, 256.0 * 1024, net::TrafficClass::kStoragePush);
}

void BM_WaterFill(benchmark::State& state) {
  const int flows_per_wave = static_cast<int>(state.range(0));
  constexpr int kWaves = 8;
  constexpr int kNodes = 32;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator s;
    net::FlowNetwork net(s, net::FlowNetworkConfig{8e9, 0.0, 8e9});
    std::vector<net::NodeId> nodes;
    for (int i = 0; i < kNodes; ++i) nodes.push_back(net.add_node(117.5e6));
    for (int w = 0; w < kWaves; ++w) {
      s.schedule(w * 0.5, [&net, &s, &nodes, flows_per_wave] {
        for (int i = 0; i < flows_per_wave; ++i)
          s.spawn(burst_member(&net, nodes[i % kNodes], nodes[(i + 11) % kNodes]));
      });
    }
    s.run();
    events += s.events_processed();
  }
  state.SetItemsProcessed(state.iterations() * flows_per_wave * kWaves);
  state.counters["events/sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WaterFill)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

sim::Task write_chunks(storage::ChunkStore* store, int n) {
  for (int i = 0; i < n; ++i)
    co_await store->write_chunk(static_cast<storage::ChunkId>(i % store->num_chunks()));
}

void BM_ChunkStoreWrites(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    storage::Disk disk(s, storage::DiskConfig{55e6, 0.0});
    storage::ChunkStore store(s, disk,
                              storage::ImageConfig{1 * storage::kGiB,
                                                   256 * static_cast<std::uint32_t>(1024)});
    s.spawn(write_chunks(&store, n));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChunkStoreWrites)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
