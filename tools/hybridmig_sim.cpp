// hybridmig_sim — command-line experiment runner.
//
// Runs one live-migration experiment with configurable approach, workload
// and scale, printing the paper's metrics. Examples:
//
//   hybridmig_sim --approach=our-approach --workload=ior
//   hybridmig_sim --approach=precopy --workload=asyncwr --migrations=4
//   hybridmig_sim --approach=pvfs-shared --workload=cm1 --grid=4x4
//   hybridmig_sim --list
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "cloud/experiment.h"
#include "cloud/report.h"
#include "cloud/shard_plan.h"

using namespace hm;

namespace {

void usage() {
  std::cout <<
      "hybridmig_sim — hybrid local storage transfer simulation (HPDC'12)\n"
      "\n"
      "  --approach=NAME     our-approach | mirror | postcopy | precopy | pvfs-shared\n"
      "  --workload=NAME     ior | asyncwr | cm1 | none | trace:SPEC\n"
      "                      (trace:zipf|phase|burst|scan[:k=v,...] generates a\n"
      "                       stream; trace:file=PATH replays a recorded trace)\n"
      "  --record-trace=PATH capture this run's workload stream into a trace file\n"
      "  --vms=N             number of source VMs (default 1; cm1 uses grid)\n"
      "  --migrations=N      how many VMs to migrate (default 1)\n"
      "  --destinations=N    destination nodes (default = migrations)\n"
      "  --migrate-at=SEC    first migration initiation time (default 100)\n"
      "  --interval=SEC      delay between successive migrations (default 0)\n"
      "  --arrivals=SPEC     continuous-arrival scheduler (replaces the fixed\n"
      "                      schedule; --migrations is ignored):\n"
      "                      poisson:rate=R,until=T[,from=T,count=N,hi=F] |\n"
      "                      diurnal:base=R,amp=F,period=T[,phase=T,...] |\n"
      "                      trace:T1,T2,...[,hi=F]; optionally followed by\n"
      "                      ';sched:concurrent=N,capacity=N,groups=N,\n"
      "                      policy=round-robin|least-loaded,preempt=0|1,\n"
      "                      attempts=N'\n"
      "  --threshold=N       hybrid write-count threshold (default 3)\n"
      "  --chunk-kib=N       chunk/stripe size in KiB (default 256)\n"
      "  --grid=XxY          cm1 rank grid (default 8x8)\n"
      "  --iterations=N      workload iterations (ior default 30, asyncwr 1800)\n"
      "  --faults=SPEC       inject faults: scripted events\n"
      "                      (KIND@T[+DUR][*FACTOR][#TARGET] joined by ';',\n"
      "                       KIND = src-crash|dst-crash|degrade|flap|slow-recv|\n"
      "                       repo-outage|node-crash|node-degrade|node-flap|\n"
      "                       domain-crash|domain-degrade), seeded draws\n"
      "                      (rand:crashes=N,degrades=N,...,from=T,span=T,dur=T)\n"
      "                      or a continuous churn process\n"
      "                      (churn:crash-mtbf=T,crash-mttr=T,degrade-mtbf=T,...,\n"
      "                       domain-mtbf=T,factor=F,from=T,until=T,nodes=N).\n"
      "                      Any form may end with ';domains:NAME=LO-HI+N,...'\n"
      "                      defining correlated failure domains (racks)\n"
      "  --explain-faults    print the resolved fault timeline / churn process\n"
      "                      parameters for this config and exit\n"
      "  --audit             run the virtual-time watchdog/invariant auditor\n"
      "                      (liveness + chunk conservation; violations fail\n"
      "                      the run)\n"
      "  --shards=N|auto     parallel in-process simulator shards (default 1;\n"
      "                      byte-identical virtual timeline for any value;\n"
      "                      auto = min(components, worker threads available))\n"
      "  --explain-shards    print the shard plan (count, per-shard VM loads,\n"
      "                      coupling reason) for this config and exit\n"
      "  --seed=N            RNG seed (default 42)\n"
      "  --baseline          disable migrations (reference run)\n"
      "  --list              print the approach summary (paper Table 1)\n";
}

std::optional<std::string> arg_value(const char* arg, const char* key) {
  const std::size_t klen = std::strlen(key);
  if (std::strncmp(arg, key, klen) == 0 && arg[klen] == '=')
    return std::string(arg + klen + 1);
  return std::nullopt;
}

std::optional<core::Approach> parse_approach(const std::string& s) {
  for (core::Approach a :
       {core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
        core::Approach::kPrecopy, core::Approach::kPvfsShared}) {
    if (s == core::approach_name(a)) return a;
  }
  if (s == "hybrid") return core::Approach::kHybrid;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  cloud::ExperimentConfig cfg;
  cfg.cluster.num_nodes = 40;
  cfg.workload = cloud::WorkloadKind::kIor;
  cfg.ior.iterations = 30;
  cfg.ior.file_offset = storage::kGiB;
  cfg.asyncwr.file_offset = storage::kGiB;
  cfg.max_sim_time = 7200.0;
  bool explicit_dests = false;
  bool explain_shards = false;
  bool explain_faults = false;
  int iterations = -1;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage();
      return 0;
    }
    if (std::strcmp(arg, "--list") == 0) {
      cloud::print_table1(std::cout);
      return 0;
    }
    if (std::strcmp(arg, "--baseline") == 0) {
      cfg.perform_migrations = false;
      continue;
    }
    if (auto v = arg_value(arg, "--approach")) {
      auto a = parse_approach(*v);
      if (!a) {
        std::cerr << "unknown approach: " << *v << "\n";
        return 2;
      }
      cfg.approach = *a;
      continue;
    }
    if (auto v = arg_value(arg, "--workload")) {
      if (*v == "ior") cfg.workload = cloud::WorkloadKind::kIor;
      else if (*v == "asyncwr") cfg.workload = cloud::WorkloadKind::kAsyncWr;
      else if (*v == "cm1") cfg.workload = cloud::WorkloadKind::kCm1;
      else if (*v == "none") cfg.workload = cloud::WorkloadKind::kNone;
      else if (v->rfind("trace:", 0) == 0 || *v == "trace") {
        cfg.workload = cloud::WorkloadKind::kTrace;
        std::string err;
        if (*v != "trace" && !workloads::parse_trace_spec(*v, &cfg.trace, &err)) {
          std::cerr << err << "\n";
          return 2;
        }
      } else {
        std::cerr << "unknown workload: " << *v << "\n";
        return 2;
      }
      continue;
    }
    if (auto v = arg_value(arg, "--record-trace")) {
      cfg.record_trace_path = *v;
      continue;
    }
    if (auto v = arg_value(arg, "--vms")) { cfg.num_vms = std::stoul(*v); continue; }
    if (auto v = arg_value(arg, "--migrations")) {
      cfg.num_migrations = std::stoul(*v);
      if (!explicit_dests) cfg.num_destinations = cfg.num_migrations;
      continue;
    }
    if (auto v = arg_value(arg, "--destinations")) {
      cfg.num_destinations = std::stoul(*v);
      explicit_dests = true;
      continue;
    }
    if (auto v = arg_value(arg, "--migrate-at")) { cfg.first_migration_at = std::stod(*v); continue; }
    if (auto v = arg_value(arg, "--interval")) { cfg.migration_interval_s = std::stod(*v); continue; }
    if (auto v = arg_value(arg, "--arrivals")) {
      std::string err;
      if (!cloud::parse_scheduler_spec(*v, &cfg.scheduler, &err)) {
        std::cerr << err << "\n";
        return 2;
      }
      continue;
    }
    if (auto v = arg_value(arg, "--threshold")) {
      cfg.approach_cfg.hybrid.threshold = static_cast<std::uint32_t>(std::stoul(*v));
      continue;
    }
    if (auto v = arg_value(arg, "--chunk-kib")) {
      cfg.cluster.image.chunk_bytes = static_cast<std::uint32_t>(std::stoul(*v)) * 1024;
      continue;
    }
    if (auto v = arg_value(arg, "--grid")) {
      const auto x = v->find('x');
      if (x == std::string::npos) {
        std::cerr << "--grid expects XxY\n";
        return 2;
      }
      cfg.cm1.grid_x = std::stoi(v->substr(0, x));
      cfg.cm1.grid_y = std::stoi(v->substr(x + 1));
      continue;
    }
    if (auto v = arg_value(arg, "--iterations")) { iterations = std::stoi(*v); continue; }
    if (auto v = arg_value(arg, "--faults")) {
      std::string err;
      if (!sim::parse_fault_spec(*v, &cfg.faults, &err)) {
        std::cerr << err << "\n";
        return 2;
      }
      continue;
    }
    if (auto v = arg_value(arg, "--shards")) {
      cfg.shards = (*v == "auto") ? cloud::ExperimentConfig::kShardsAuto
                                  : static_cast<std::uint32_t>(std::stoul(*v));
      continue;
    }
    if (std::strcmp(arg, "--explain-shards") == 0) {
      explain_shards = true;
      continue;
    }
    if (std::strcmp(arg, "--explain-faults") == 0) {
      explain_faults = true;
      continue;
    }
    if (std::strcmp(arg, "--audit") == 0) {
      cfg.audit = true;
      continue;
    }
    if (auto v = arg_value(arg, "--seed")) { cfg.seed = std::stoull(*v); continue; }
    std::cerr << "unknown argument: " << arg << " (try --help)\n";
    return 2;
  }
  if (iterations > 0) {
    cfg.ior.iterations = iterations;
    cfg.asyncwr.iterations = iterations;
    cfg.cm1.num_outputs = iterations;
  }
  if (cfg.workload == cloud::WorkloadKind::kCm1 &&
      cfg.cluster.num_nodes < static_cast<std::size_t>(cfg.cm1.ranks()) + 8) {
    cfg.cluster.num_nodes = static_cast<std::size_t>(cfg.cm1.ranks()) + 8;
  }

  if (explain_faults) {
    cloud::ExperimentConfig planned = cfg;
    planned.normalize();
    if (!planned.faults.enabled()) {
      std::cout << "fault plan: none\n";
      return 0;
    }
    // Cluster seeds its RNG as Rng(cfg.seed), so a fresh Rng reproduces the
    // exact plan the run would arm.
    const sim::FaultPlan plan =
        sim::build_fault_plan(planned.faults, sim::Rng(planned.seed),
                              static_cast<std::uint32_t>(planned.num_migrations));
    const std::size_t n_vms = planned.num_vms;
    const std::size_t n_dst = planned.num_destinations;
    const std::size_t n_nodes = planned.cluster.num_nodes;
    auto target_of = [&](const sim::FaultEvent& ev) -> std::string {
      if (sim::fault_kind_is_domain(ev.kind)) {
        const auto& dom = plan.domains[ev.target % plan.domains.size()];
        std::string s = "domain '" + dom.name + "' (nodes";
        for (const auto n : dom.nodes) s += " " + std::to_string(n);
        return s + ")";
      }
      if (sim::fault_kind_is_node(ev.kind))
        return "node " + std::to_string(ev.target % n_nodes);
      if (ev.kind == sim::FaultKind::kRepoOutage) return "repository (all stripes)";
      const std::size_t k = n_vms > 0 ? ev.target % n_vms : 0;
      if (ev.kind == sim::FaultKind::kDestCrash ||
          ev.kind == sim::FaultKind::kSlowReceiver)
        return "node " + std::to_string(n_vms + k % n_dst) + " (migration #" +
               std::to_string(k) + " destination)";
      return "node " + std::to_string(k) + " (migration #" + std::to_string(k) +
             " source)";
    };
    std::cout << "fault plan: " << plan.events.size() << " scripted event"
              << (plan.events.size() == 1 ? "" : "s")
              << (plan.churn ? " + churn process" : "") << "\n";
    for (const sim::FaultEvent& ev : plan.events) {
      std::printf("  t=%9.3fs %-13s dur=%7.3fs factor=%.3f -> %s\n", ev.at,
                  sim::fault_kind_name(ev.kind), ev.duration_s, ev.factor,
                  target_of(ev).c_str());
    }
    if (plan.churn) {
      const sim::FaultChurnSpec& cs = plan.churn_spec;
      std::size_t churn_nodes = cs.nodes > 0 ? cs.nodes : n_vms + n_dst;
      churn_nodes = std::min(churn_nodes, n_nodes);
      std::cout << "churn process: " << churn_nodes << " node(s), window ["
                << cloud::fmt_double(cs.from, 1) << "s, "
                << (cs.until > 0 ? cloud::fmt_double(cs.until, 1) + "s" : "inf")
                << "), degrade factor " << cloud::fmt_double(cs.factor, 3) << "\n";
      if (cs.crash_mtbf > 0)
        std::cout << "  node-crash:   mtbf=" << cloud::fmt_double(cs.crash_mtbf, 1)
                  << "s mttr=" << cloud::fmt_double(cs.crash_mttr, 1) << "s\n";
      if (cs.degrade_mtbf > 0)
        std::cout << "  node-degrade: mtbf=" << cloud::fmt_double(cs.degrade_mtbf, 1)
                  << "s mttr=" << cloud::fmt_double(cs.degrade_mttr, 1) << "s\n";
      if (cs.flap_mtbf > 0)
        std::cout << "  node-flap:    mtbf=" << cloud::fmt_double(cs.flap_mtbf, 1)
                  << "s mttr=" << cloud::fmt_double(cs.flap_mttr, 1) << "s\n";
      if (cs.domain_mtbf > 0)
        std::cout << "  domain-crash: mtbf=" << cloud::fmt_double(cs.domain_mtbf, 1)
                  << "s mttr=" << cloud::fmt_double(cs.domain_mttr, 1) << "s over "
                  << plan.domains.size() << " domain(s)\n";
    }
    if (!plan.domains.empty()) {
      std::cout << "failure domains:\n";
      for (const sim::FaultDomain& dom : plan.domains) {
        std::cout << "  " << dom.name << ":";
        for (const auto n : dom.nodes) std::cout << " " << n;
        std::cout << "\n";
      }
    }
    return 0;
  }

  if (explain_shards) {
    cloud::ExperimentConfig planned = cfg;
    planned.normalize();
    const cloud::ShardPlan plan = cloud::plan_shards(planned);
    const char* kind = plan.kind == cloud::PlanKind::kSingle        ? "single"
                       : plan.kind == cloud::PlanKind::kIndependent ? "independent"
                                                                    : "epoch-coupled";
    std::cout << "shard plan: " << plan.shard_count() << " shard"
              << (plan.shard_count() == 1 ? "" : "s") << " (" << kind << ")";
    if (plan.components > 0) std::cout << ", " << plan.components << " components";
    std::cout << "\n";
    for (std::uint32_t s = 0; s < plan.shard_count(); ++s)
      std::cout << "  shard " << s << ": " << plan.slices[s].size() << " VMs\n";
    if (!plan.coupled_reason.empty())
      std::cout << (plan.kind == cloud::PlanKind::kEpochCoupled ? "coupling: "
                                                                : "collapse: ")
                << plan.coupled_reason << "\n";
    return 0;
  }

  std::cout << "approach=" << core::approach_name(cfg.approach)
            << " workload=" << cloud::workload_name(cfg.workload)
            << " vms=" << cfg.num_vms;
  if (cfg.perform_migrations && cfg.scheduler.enabled())
    std::cout << " arrivals=" << sim::arrival_kind_name(cfg.scheduler.arrivals.kind);
  else
    std::cout << " migrations=" << (cfg.perform_migrations ? cfg.num_migrations : 0);
  std::cout << "\n";

  cloud::Experiment exp(std::move(cfg));
  cloud::ExperimentResult res = exp.run();

  if (!res.error.empty()) std::cerr << "error: " << res.error << "\n";
  std::cout << "\ncompleted:          " << (res.completed ? "yes" : "NO (guard hit)")
            << "\nshards:             " << res.shards_used;
  if (!res.shard_fallback_reason.empty())
    std::cout << " (" << res.shard_fallback_reason << ")";
  std::cout << "\nsimulated time:     " << cloud::fmt_seconds(res.sim_duration)
            << "\napp execution time: " << cloud::fmt_seconds(res.app_execution_time)
            << "\navg migration time: " << cloud::fmt_seconds(res.avg_migration_time)
            << "\nmax downtime:       " << cloud::fmt_double(res.max_downtime * 1e3, 1)
            << " ms\n";
  if (res.scheduler.requests > 0) {
    const cloud::SchedulerStats& sc = res.scheduler;
    std::cout << "\nscheduler:          " << sc.requests << " requests ("
              << sc.completed << " completed, " << sc.abandoned << " abandoned, "
              << sc.rejected << " rejected)"
              << "\n  preemptions:      " << sc.preemptions
              << "\n  peak depth:       " << sc.peak_queue_depth << " queued, "
              << sc.peak_running << " running"
              << "\n  queueing delay:   p50 " << cloud::fmt_seconds(sc.queueing_p50_s)
              << ", p99 " << cloud::fmt_seconds(sc.queueing_p99_s)
              << ", p999 " << cloud::fmt_seconds(sc.queueing_p999_s)
              << ", max " << cloud::fmt_seconds(sc.max_queueing_delay_s) << "\n";
  }
  if (res.recovery.faults_injected > 0) {
    const cloud::RecoveryStats& rc = res.recovery;
    std::cout << "\nfault axis:         " << rc.faults_injected << " faults injected"
              << "\n  node crashes:     " << rc.node_crashes << " ("
              << rc.correlated_events << " correlated domain event"
              << (rc.correlated_events == 1 ? "" : "s") << ")"
              << "\n  retries:          " << rc.total_retries
              << " (abandoned: " << rc.migrations_abandoned
              << ", recovered: " << rc.migrations_recovered << ")"
              << "\n  re-transferred:   " << cloud::fmt_bytes(rc.retransferred_bytes)
              << " (" << cloud::fmt_double(rc.salvaged_chunks, 0)
              << " chunks salvaged)"
              << "\n  fault downtime:   " << cloud::fmt_seconds(rc.fault_downtime_s)
              << "\n  node downtime:    " << cloud::fmt_seconds(rc.node_downtime_s)
              << "\n  time-to-recover:  max " << cloud::fmt_seconds(rc.max_time_to_recover_s)
              << ", p50 " << cloud::fmt_seconds(rc.recovery_p50_s)
              << ", p99 " << cloud::fmt_seconds(rc.recovery_p99_s)
              << ", p999 " << cloud::fmt_seconds(rc.recovery_p999_s)
              << "\n  downtime pctile:  p50 " << cloud::fmt_seconds(rc.downtime_p50_s)
              << ", p99 " << cloud::fmt_seconds(rc.downtime_p99_s)
              << ", p999 " << cloud::fmt_seconds(rc.downtime_p999_s) << "\n";
  }
  if (res.audit_checks > 0 || !res.audit_violations.empty()) {
    std::cout << "\nauditor:            " << res.audit_checks << " checks, "
              << res.audit_violations.size() << " violation"
              << (res.audit_violations.size() == 1 ? "" : "s") << "\n";
    for (const std::string& v : res.audit_violations)
      std::cout << "  VIOLATION: " << v << "\n";
  }
  std::cout << "\ntraffic by class:\n";
  for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i) {
    const auto cls = static_cast<net::TrafficClass>(i);
    if (res.traffic(cls) > 0)
      std::cout << "  " << net::traffic_class_name(cls) << ": "
                << cloud::fmt_bytes(res.traffic(cls)) << "\n";
  }
  std::cout << "  total: " << cloud::fmt_bytes(res.total_traffic) << "\n";
  std::cout << "\nin-VM throughput: write " << cloud::fmt_bytes(res.write_Bps)
            << "/s, read " << cloud::fmt_bytes(res.read_Bps) << "/s\n";
  return (res.completed && res.audit_violations.empty()) ? 0 : 1;
}
