// trace_info — inspect, validate and generate workload traces.
//
//   trace_info FILE               validate + summarize a trace (streaming,
//                                 bounded memory; exit 1 on a malformed file)
//   trace_info FILE --dump[=N]    additionally print the first N records
//   trace_info --gen SPEC --out FILE [--seed N]
//                                 generate a trace (SPEC as accepted by
//                                 --workload=trace:..., e.g. "zipf:dur=30")
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "workloads/trace_gen.h"

using namespace hm;
using namespace hm::workloads;

namespace {

int generate(const std::string& spec, const std::string& out_path, std::uint64_t seed) {
  TraceSourceConfig src;
  std::string err;
  if (!parse_trace_spec(spec, &src, &err)) {
    std::fprintf(stderr, "trace_info: %s\n", err.c_str());
    return 2;
  }
  if (!src.path.empty()) {
    std::fprintf(stderr, "trace_info: --gen expects a generator spec, not file=\n");
    return 2;
  }
  const TraceData data = generate_trace(src.gen, seed);
  if (!write_trace(out_path, data, &err)) {
    std::fprintf(stderr, "trace_info: %s\n", err.c_str());
    return 1;
  }
  std::printf("wrote %s: pattern=%s seed=%" PRIu64 " records=%zu\n", out_path.c_str(),
              trace_pattern_name(src.gen.pattern), seed, data.records.size());
  return 0;
}

void print_record(std::uint64_t idx, const TraceRecord& r) {
  std::printf("  [%6" PRIu64 "] t=%-12.6f vm=%-3u lane=%-2u %-11s a=%" PRIu64
              " b=%" PRIu64 " c=%" PRIu64 "\n",
              idx, r.t, r.vm, r.lane, trace_op_name(r.op), r.a, r.b, r.c);
}

int inspect(const std::string& path, std::uint64_t dump) {
  TraceReader reader;
  if (!reader.open(path)) {
    std::fprintf(stderr, "trace_info: %s\n", reader.error().c_str());
    return 1;
  }
  const TraceHeader& h = reader.header();
  std::printf("%s\n", path.c_str());
  std::printf("  version      %u\n", h.version);
  if (!h.name.empty()) std::printf("  name         %s\n", h.name.c_str());
  std::printf("  num_vms      %u\n", h.num_vms);
  std::printf("  records      %" PRIu64 "\n", h.records);
  std::printf("  page_bytes   %" PRIu64 "   (universe %" PRIu64 " pages)\n", h.page_bytes,
              h.pages);
  std::printf("  chunk_bytes  %" PRIu64 "   (universe %" PRIu64
              " chunks, file_offset %" PRIu64 ")\n",
              h.chunk_bytes, h.chunks, h.file_offset);

  std::map<TraceOp, std::uint64_t> op_count;
  double t_first = 0, t_last = 0;
  double compute_s = 0, mem_bytes = 0, write_bytes = 0, read_bytes = 0, net_bytes = 0;
  util::DirtyBitmap pages_touched(h.pages), chunks_touched(h.chunks);
  TraceRecord r;
  std::uint64_t n = 0;
  while (reader.next(r)) {
    if (n == 0) t_first = r.t;
    t_last = r.t;
    if (n < dump) print_record(n, r);
    ++op_count[r.op];
    switch (r.op) {
      case TraceOp::kCompute:
        compute_s += std::bit_cast<double>(r.a);
        break;
      case TraceOp::kMemDirty:
        mem_bytes += static_cast<double>(r.b * h.page_bytes);
        if (h.pages > 0) pages_touched.set_range(r.a, r.a + r.b);
        break;
      case TraceOp::kFileWrite:
        write_bytes += static_cast<double>(r.b);
        break;
      case TraceOp::kFileRead:
        read_bytes += static_cast<double>(r.b);
        break;
      case TraceOp::kChunkWrite:
        write_bytes += static_cast<double>(r.b * h.chunk_bytes);
        if (h.chunks > 0) chunks_touched.set_range(r.a, r.a + r.b);
        break;
      case TraceOp::kChunkRead:
        read_bytes += static_cast<double>(r.b * h.chunk_bytes);
        if (h.chunks > 0) chunks_touched.set_range(r.a, r.a + r.b);
        break;
      case TraceOp::kNetSend:
        net_bytes += std::bit_cast<double>(r.c);
        break;
      default:
        break;
    }
    ++n;
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "trace_info: %s\n", reader.error().c_str());
    return 1;
  }
  std::printf("  span         %.3f s .. %.3f s\n", t_first, t_last);
  std::printf("  per-op counts:\n");
  for (const auto& [op, count] : op_count)
    std::printf("    %-11s %" PRIu64 "\n", trace_op_name(op), count);
  std::printf("  guest compute   %.1f s\n", compute_s);
  std::printf("  memory dirtied  %.1f MB over %" PRIu64 " distinct pages\n",
              mem_bytes / 1e6, pages_touched.count());
  std::printf("  chunk footprint %" PRIu64 " distinct chunks\n", chunks_touched.count());
  std::printf("  file write/read %.1f / %.1f MB, app net %.1f MB\n", write_bytes / 1e6,
              read_bytes / 1e6, net_bytes / 1e6);
  std::printf("OK: %" PRIu64 " records valid\n", n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path, gen_spec, out_path;
  std::uint64_t seed = 42, dump = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* key) -> const char* {
      const std::size_t klen = std::strlen(key);
      if (std::strncmp(arg, key, klen) == 0 && arg[klen] == '=') return arg + klen + 1;
      return nullptr;
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(
          "usage: trace_info FILE [--dump[=N]]\n"
          "       trace_info --gen SPEC --out FILE [--seed N]\n");
      return 0;
    }
    if (std::strcmp(arg, "--gen") == 0 && i + 1 < argc) { gen_spec = argv[++i]; continue; }
    if (const char* v = value("--gen")) { gen_spec = v; continue; }
    if (std::strcmp(arg, "--out") == 0 && i + 1 < argc) { out_path = argv[++i]; continue; }
    if (const char* v = value("--out")) { out_path = v; continue; }
    if (const char* v = value("--seed")) { seed = std::strtoull(v, nullptr, 10); continue; }
    if (std::strcmp(arg, "--dump") == 0) { dump = 32; continue; }
    if (const char* v = value("--dump")) { dump = std::strtoull(v, nullptr, 10); continue; }
    if (arg[0] == '-') {
      std::fprintf(stderr, "trace_info: unknown option %s (try --help)\n", arg);
      return 2;
    }
    path = arg;
  }
  if (!gen_spec.empty()) {
    if (out_path.empty()) {
      std::fprintf(stderr, "trace_info: --gen requires --out FILE\n");
      return 2;
    }
    return generate(gen_spec, out_path, seed);
  }
  if (path.empty()) {
    std::fprintf(stderr, "trace_info: no trace file given (try --help)\n");
    return 2;
  }
  return inspect(path, dump);
}
