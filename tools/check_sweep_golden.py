#!/usr/bin/env python3
"""Diff a fig4_scale_sweep JSON against a committed golden, ignoring wall time.

Every virtual-time field (events, sim_s, traffic, migration times, solver
counters, frame counters) must match the golden EXACTLY: the engine's
determinism contract says identical configuration => identical virtual
timeline, so any drift here is a behavioural regression hiding behind
wall-clock noise. Wall-derived fields (wall_ms, events_per_sec,
flows_per_sec) are host-dependent and excluded.

Usage: check_sweep_golden.py [--ignore-solver-work]
           <golden.json> <fresh.json> [<golden2> <fresh2> ...]
Multiple golden/fresh pairs are checked in one invocation (the CI matrix:
AsyncWR regimes plus the trace-replay, fault and steady-state scheduler
sweeps — scheduler rows carry the regime-gated request/queueing-percentile
fields, diffed exactly like any other virtual-time field); the exit status
is 0 only if EVERY pair matches, 1 with a per-field diff otherwise.

--ignore-solver-work additionally excludes the solver-work counters
(solver_components, flows_resolved, flows_resolved_per_epoch, escalations).
Those legitimately differ between the incremental and full-solve regimes
(ABLATE_INCREMENTAL) while every virtual-time field stays byte-identical —
use the flag when gating a fullsolve run against an incremental golden.

--shards additionally excludes the scheduler-implementation counters
(events, solver_epochs, flows_resolved_per_epoch, coroutine_frames,
frames_reused, frame_heap_allocs) plus the "shards" and
"shard_fallback_reason" row fields, for gating a shards=N sweep against a
shards=1 golden. A sharded run processes slightly fewer scheduler events
than the single run (a finished slice stops stepping at its own last
needed event, while the global loop drains residual timers of
already-finished VMs until the last slice finishes), splits coroutine
frames across per-shard thread-local pools, and — in the independent mode
— cannot share a settle epoch between components living on different
shards (so same-timestamp churn that one global epoch would batch costs
one epoch per shard — more epochs, same work). Those counters measure the
engine, not the simulated system. Every simulated quantity — sim_s, flows,
solver WORK counters (components water-filled, flows resolved,
escalations), migration times, traffic — must still match EXACTLY: that is
the sharding determinism contract. (The epoch-coupled mode's mirror solver
replays the single-shard epoch structure literally, so for it even the
excluded solver_epochs happens to match.)
"""
import json
import sys

WALL_FIELDS = {"wall_ms", "events_per_sec", "flows_per_sec"}
SOLVER_WORK_FIELDS = {"solver_components", "flows_resolved",
                      "flows_resolved_per_epoch", "escalations"}
SCHEDULER_FIELDS = {"events", "solver_epochs", "flows_resolved_per_epoch",
                    "coroutine_frames", "frames_reused", "frame_heap_allocs",
                    "shards", "shard_fallback_reason"}


def strip(rows, ignored):
    return [{k: v for k, v in row.items() if k not in ignored} for row in rows]


def check_pair(golden_path, fresh_path, ignored) -> bool:
    with open(golden_path) as f:
        golden = strip(json.load(f), ignored)
    with open(fresh_path) as f:
        fresh = strip(json.load(f), ignored)
    ok = True
    if len(golden) != len(fresh):
        print(f"{fresh_path}: row count differs: golden {len(golden)} vs fresh {len(fresh)}")
        ok = False
    for g, s in zip(golden, fresh):
        scale = g.get("concurrent_migrations", "?")
        for key in sorted(set(g) | set(s)):
            if g.get(key) != s.get(key):
                print(f"{fresh_path}: n={scale} {key}: "
                      f"golden {g.get(key)!r} != fresh {s.get(key)!r}")
                ok = False
    if ok:
        print(f"OK: {fresh_path} matches {golden_path} in every virtual-time field")
    return ok


def main() -> int:
    args = sys.argv[1:]
    ignored = set(WALL_FIELDS)
    while args and args[0] in ("--ignore-solver-work", "--shards"):
        if args[0] == "--ignore-solver-work":
            ignored |= SOLVER_WORK_FIELDS
        else:
            ignored |= SCHEDULER_FIELDS
        args = args[1:]
    if len(args) < 2 or len(args) % 2 != 0:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for i in range(0, len(args), 2):
        ok = check_pair(args[i], args[i + 1], ignored) and ok
    if ok:
        return 0
    print("virtual-time drift detected: if this change is INTENDED to alter "
          "simulated behaviour, regenerate the goldens under tests/golden/")
    return 1


if __name__ == "__main__":
    sys.exit(main())
