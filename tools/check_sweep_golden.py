#!/usr/bin/env python3
"""Diff a fig4_scale_sweep JSON against a committed golden, ignoring wall time.

Every virtual-time field (events, sim_s, traffic, migration times, solver
counters, frame counters) must match the golden EXACTLY: the engine's
determinism contract says identical configuration => identical virtual
timeline, so any drift here is a behavioural regression hiding behind
wall-clock noise. Wall-derived fields (wall_ms, events_per_sec,
flows_per_sec) are host-dependent and excluded.

Usage: check_sweep_golden.py <golden.json> <fresh.json>
Exit status 0 on match, 1 with a per-field diff otherwise.
"""
import json
import sys

WALL_FIELDS = {"wall_ms", "events_per_sec", "flows_per_sec"}


def strip(rows):
    return [{k: v for k, v in row.items() if k not in WALL_FIELDS} for row in rows]


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        golden = strip(json.load(f))
    with open(sys.argv[2]) as f:
        fresh = strip(json.load(f))
    ok = True
    if len(golden) != len(fresh):
        print(f"row count differs: golden {len(golden)} vs fresh {len(fresh)}")
        ok = False
    for g, s in zip(golden, fresh):
        scale = g.get("concurrent_migrations", "?")
        for key in sorted(set(g) | set(s)):
            if g.get(key) != s.get(key):
                print(f"n={scale} {key}: golden {g.get(key)!r} != fresh {s.get(key)!r}")
                ok = False
    if ok:
        print(f"OK: {sys.argv[2]} matches {sys.argv[1]} in every virtual-time field")
        return 0
    print("virtual-time drift detected: if this change is INTENDED to alter "
          "simulated behaviour, regenerate the goldens under tests/golden/")
    return 1


if __name__ == "__main__":
    sys.exit(main())
